//! Dophy as a runnable protocol stack: routing + data plane + sink logic.
//!
//! [`DophyNode`] implements [`dophy_sim::Protocol`] and plays one of two
//! roles:
//!
//! * **Sensor node** — runs an embedded CTP [`Router`], generates periodic
//!   data packets stamped with its current model epoch, and, as a
//!   *forwarder*, performs receiver-side hop encoding before relaying each
//!   accepted packet to its parent.
//! * **Sink** — decodes every delivered packet (path + per-link
//!   retransmission counts), feeds the loss estimator and the model
//!   learners, and periodically refreshes/disseminates the probability
//!   model ([`ModelManager`], Optimization 2).
//!
//! All sink-side state lives in a shared [`SinkState`] behind a mutex; node
//! protocols hold `Arc`s to it. Nodes consult the shared [`ModelManager`]
//! only through [`ModelManager::node_current`]/epoch lookups that respect
//! per-node dissemination delays — the mutex is a simulation convenience,
//! not an information side-channel (see DESIGN.md).
//!
//! Ground-truth hop records are also logged (for scoring and for the
//! encoding-overhead comparisons); this is explicitly a *measurement
//! harness* channel that a real deployment would not have.

use crate::decoder::{decode_packet, DecodeError, DecodedPacket};
use crate::encoder::{encode_hop, EncodeError};
use crate::header::DophyHeader;
use crate::model_mgr::{ModelManager, ModelUpdateConfig};
use crate::symbols::SymbolSpaces;
use dophy_coding::aggregate::AggregationPolicy;
use dophy_routing::{Router, RouterConfig};
use dophy_sim::obs::{
    data_trace_id, model_trace_id, DecodeEvent, DecodeOutcome, DropEvent, DropReason,
    EpochSwitchEvent, SpanEvent, SpanPhase,
};
use dophy_sim::profile::{self, Subsystem};
use dophy_sim::stats::{CountHistogram, Streaming};
use dophy_sim::{
    Ctx, Engine, FaultConfig, FaultPlan, Frame, LossModel, NodeId, Profiler, Protocol, RngHub,
    SendDone, ShardedEngine, SimConfig, SimDuration, SimTime, TimerId, Topology,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Application timer: generate the next data packet.
const TIMER_TRAFFIC: TimerId = TimerId(1);
/// Sink timer: consider a model refresh.
const TIMER_MODEL_UPDATE: TimerId = TimerId(2);
/// Node-churn timer: toggle this node's up/down state.
const TIMER_CHURN: TimerId = TimerId(3);
/// Injected-crash timer: flip between the fault plan's up/down phases.
const TIMER_FAULT: TimerId = TimerId(4);

/// MAC-level frame header bytes charged on every data frame (addresses,
/// FCS — what TinyOS's 802.15.4 header costs).
pub const MAC_HEADER_BYTES: usize = 11;

/// Node up/down churn: each non-sink node alternates exponentially
/// distributed up and down phases (radio off while down). Models battery
/// swaps, crashes, and duty-cycled deployments — the other "dynamic" in
/// dynamic sensor networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeChurnConfig {
    /// Mean uptime per cycle.
    pub mean_up: SimDuration,
    /// Mean downtime per cycle.
    pub mean_down: SimDuration,
}

/// Arrival-process shape for application traffic (the mean period comes
/// from [`DophyConfig::traffic_period`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficShape {
    /// Fixed period with uniform ±50% jitter.
    Periodic,
    /// Poisson arrivals.
    Poisson,
}

impl TrafficShape {
    fn pattern(self, period: SimDuration) -> dophy_sim::TrafficPattern {
        match self {
            TrafficShape::Periodic => dophy_sim::TrafficPattern::Periodic { period },
            TrafficShape::Poisson => dophy_sim::TrafficPattern::Poisson {
                mean_period: period,
            },
        }
    }
}

/// Full Dophy stack configuration.
///
/// `Hash` is stable-by-construction (all float-bearing members hash raw
/// bits) so the bench harness can use it as a content-address for run
/// caching.
#[derive(Debug, Clone, Copy, PartialEq, Hash, Serialize, Deserialize)]
pub struct DophyConfig {
    /// Retransmission-count aggregation policy (Optimization 1).
    pub aggregation: AggregationPolicy,
    /// Lossless escape refinement on top of aggregation.
    pub refine: bool,
    /// Model update/dissemination tuning (Optimization 2).
    pub model_update: ModelUpdateConfig,
    /// Routing parameters.
    pub router: RouterConfig,
    /// Mean data-generation period per node (uniformly jittered ±50%).
    pub traffic_period: SimDuration,
    /// Arrival-process shape built on `traffic_period` (periodic with
    /// jitter, or Poisson with the same mean).
    pub traffic_shape: TrafficShape,
    /// Application payload bytes (sensor reading).
    pub payload_bytes: usize,
    /// Delay before traffic starts (lets routing converge).
    pub warmup: SimDuration,
    /// TTL guard against transient routing loops.
    pub ttl: u8,
    /// Recently-seen window for duplicate suppression.
    pub dedup_window: usize,
    /// Windowing for the time-resolved estimator.
    pub tracking: crate::tracking::WindowConfig,
    /// Optional node up/down churn (None = nodes never fail).
    pub churn: Option<NodeChurnConfig>,
}

impl Default for DophyConfig {
    fn default() -> Self {
        Self {
            aggregation: AggregationPolicy::Cap { cap: 4 },
            refine: false,
            model_update: ModelUpdateConfig::default(),
            router: RouterConfig::default(),
            traffic_period: SimDuration::from_secs(10),
            traffic_shape: TrafficShape::Periodic,
            payload_bytes: 20,
            warmup: SimDuration::from_secs(60),
            ttl: 24,
            dedup_window: 4096,
            tracking: crate::tracking::WindowConfig::default(),
            churn: None,
        }
    }
}

/// The data-packet payload flowing through the network.
#[derive(Debug, Clone)]
pub struct DataMsg {
    /// Dophy's measurement header (grows hop by hop).
    pub header: DophyHeader,
}

/// Per-packet overhead accounting.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OverheadStats {
    /// Packets delivered to the sink.
    pub packets: u64,
    /// Total finished arithmetic-stream bytes over all delivered packets.
    pub stream_bytes: u64,
    /// Total Dophy measurement overhead (stream + coder state + epoch).
    pub measurement_bytes: u64,
    /// Per-path-length stream-byte statistics (index = hop count).
    pub stream_by_hops: Vec<Streaming>,
    /// Hop-count histogram of delivered packets.
    pub hops_hist: CountHistogram,
}

impl OverheadStats {
    fn record(&mut self, hops: usize, stream_len: usize, measurement: usize) {
        self.packets += 1;
        self.stream_bytes += stream_len as u64;
        self.measurement_bytes += measurement as u64;
        if hops >= self.stream_by_hops.len() {
            self.stream_by_hops.resize_with(hops + 1, Streaming::new);
        }
        self.stream_by_hops[hops].push(stream_len as f64);
        self.hops_hist.record(hops);
    }

    /// Mean measurement bytes per delivered packet.
    pub fn mean_measurement_bytes(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.measurement_bytes as f64 / self.packets as f64
        }
    }

    /// Mean finished-stream bytes per delivered packet.
    pub fn mean_stream_bytes(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.stream_bytes as f64 / self.packets as f64
        }
    }
}

/// Decode-failure tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeStats {
    /// Successfully decoded packets.
    pub ok: u64,
    /// Epoch aged out of the sink's history.
    pub unknown_epoch: u64,
    /// Stream decoded to an invalid hop index.
    pub bad_index: u64,
    /// Decoded walk missed the true final sender.
    pub path_mismatch: u64,
    /// Range-coder level failure.
    pub coding: u64,
    /// A hop en route lacked the packet's epoch models.
    pub disabled: u64,
    /// Claimed hop count impossible for the topology (structural check).
    pub bad_hop_count: u64,
    /// A header field (e.g. origin) was out of range before decoding.
    pub malformed: u64,
    /// Subset of `ok`: decodes rescued by the previous-epoch fallback
    /// retry after the primary epoch choice failed with a bad index.
    pub fallback_ok: u64,
}

impl DecodeStats {
    /// Fraction of delivered packets decoded successfully.
    pub fn success_ratio(&self) -> f64 {
        let total = self.ok + self.quarantined();
        if total == 0 {
            0.0
        } else {
            self.ok as f64 / total as f64
        }
    }

    /// Packets quarantined (every non-ok outcome, each with a counted
    /// cause). The estimator ingests none of these.
    pub fn quarantined(&self) -> u64 {
        self.unknown_epoch
            + self.bad_index
            + self.path_mismatch
            + self.coding
            + self.disabled
            + self.bad_hop_count
            + self.malformed
    }
}

/// One packet's ground-truth hop log: `(sender, receiver, attempt)` per
/// hop, recorded by the forwarding nodes and completed at the sink.
pub type TrueHops = Vec<(u32, u32, u16)>;

/// Everything the sink knows, shared across protocol instances.
pub struct SinkState {
    /// Model learning, epochs, dissemination.
    pub manager: ModelManager,
    /// The inference stack (in-band MLE, windowed, Bayes, MINC, sparse-L1),
    /// fed typed evidence from decoded packets. Constructed and owned by
    /// [`crate::infer`] — the protocol layer never builds a concrete
    /// estimator and only talks to the stack through its fan-out.
    pub infer: crate::infer::Inference,
    /// Decode outcome counters.
    pub decode: DecodeStats,
    /// Per-packet overhead accounting.
    pub overhead: OverheadStats,
    /// Per-origin packets generated (indexed by node id).
    pub sent_per_origin: Vec<u64>,
    /// Per-origin packets delivered to the sink.
    pub delivered_per_origin: Vec<u64>,
    /// Ground-truth hop logs of delivered packets, keyed by (origin, seq).
    /// Verification/benchmark channel, not protocol state.
    pub true_hops: HashMap<(u32, u32), TrueHops>,
    /// Whether to populate [`SinkState::true_hops`]. The log grows with
    /// every packet ever forwarded, which dominates peak memory at
    /// 10k-node scale; harnesses that don't read it (everything except
    /// the fig3 re-encoding figure) switch it off. Pure recorder gate —
    /// protocol behavior is identical either way.
    pub record_true_hops: bool,
    /// Packets dropped for lack of a route.
    pub no_route_drops: u64,
    /// Packets dropped by the TTL guard.
    pub ttl_drops: u64,
    /// Hops that had to disable coding (missing epoch models).
    pub encode_disabled: u64,
    /// Frames destroyed by injected corruption at any receiver
    /// (truncated or flipped beyond structural parseability).
    pub corrupt_frame_drops: u64,
    /// The master RNG hub (for dissemination delay draws).
    hub: RngHub,
}

impl SinkState {
    /// Per-origin delivery ratios (None where nothing was sent).
    pub fn delivery_ratio(&self, origin: usize) -> Option<f64> {
        let sent = self.sent_per_origin[origin];
        (sent > 0).then(|| self.delivered_per_origin[origin] as f64 / sent as f64)
    }

    /// Network-wide delivery ratio.
    pub fn total_delivery_ratio(&self) -> Option<f64> {
        let sent: u64 = self.sent_per_origin.iter().sum();
        let delivered: u64 = self.delivered_per_origin.iter().sum();
        (sent > 0).then(|| delivered as f64 / sent as f64)
    }
}

/// Duplicate-suppression set with FIFO eviction.
struct DedupSet {
    seen: HashSet<(u32, u32)>,
    order: VecDeque<(u32, u32)>,
    capacity: usize,
}

impl DedupSet {
    fn new(capacity: usize) -> Self {
        Self {
            seen: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Returns true if the key was fresh (and records it).
    fn insert(&mut self, key: (u32, u32)) -> bool {
        if !self.seen.insert(key) {
            return false;
        }
        self.order.push_back(key);
        if self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        true
    }
}

/// Per-node counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Data packets this node originated.
    pub generated: u64,
    /// Packets this node forwarded.
    pub forwarded: u64,
    /// Duplicate frames suppressed.
    pub duplicates: u64,
}

/// One node of the Dophy stack (see module docs).
pub struct DophyNode {
    cfg: DophyConfig,
    topo: Arc<Topology>,
    spaces: SymbolSpaces,
    shared: Arc<Mutex<SinkState>>,
    router: Option<Router>,
    seq: u32,
    dedup: DedupSet,
    /// Node up/down state (always true without churn).
    alive: bool,
    /// Shared fault plan (None = unfaulted run; no fault draws at all).
    fault: Option<Arc<FaultPlan>>,
    /// Index into this node's crash schedule (see `FaultPlan::crash_phase`).
    crash_k: u32,
    /// Local stats.
    pub stats: NodeStats,
}

impl DophyNode {
    /// Creates one node's protocol instance (unfaulted).
    pub fn new(
        cfg: DophyConfig,
        topo: Arc<Topology>,
        spaces: SymbolSpaces,
        shared: Arc<Mutex<SinkState>>,
    ) -> Self {
        Self::with_faults(cfg, topo, spaces, shared, None)
    }

    /// Creates one node's protocol instance with an optional shared fault
    /// plan: received data frames pass through the plan's wire-level
    /// corruption, and crash-prone nodes follow its up/down schedule.
    pub fn with_faults(
        cfg: DophyConfig,
        topo: Arc<Topology>,
        spaces: SymbolSpaces,
        shared: Arc<Mutex<SinkState>>,
        fault: Option<Arc<FaultPlan>>,
    ) -> Self {
        Self {
            dedup: DedupSet::new(cfg.dedup_window),
            cfg,
            topo,
            spaces,
            shared,
            router: None,
            seq: 0,
            alive: true,
            fault,
            crash_k: 0,
            stats: NodeStats::default(),
        }
    }

    /// The embedded router (after init).
    ///
    /// # Panics
    /// Panics before `on_init`.
    pub fn router(&self) -> &Router {
        self.router.as_ref().expect("initialised")
    }

    fn schedule_churn(&self, ctx: &mut Ctx<'_>, mean: SimDuration) {
        // Exponential phase length via the Poisson traffic pattern's draw.
        let delay =
            dophy_sim::TrafficPattern::Poisson { mean_period: mean }.next_interval(ctx.rng());
        ctx.set_timer(delay, TIMER_CHURN);
    }

    fn schedule_traffic(&self, ctx: &mut Ctx<'_>) {
        let pattern = self.cfg.traffic_shape.pattern(self.cfg.traffic_period);
        let delay = pattern.next_interval(ctx.rng());
        ctx.set_timer(delay, TIMER_TRAFFIC);
    }

    fn generate_packet(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.node_id();
        let parent = self.router().next_hop();
        let mut shared = self.shared.lock();
        self.seq += 1;
        shared.sent_per_origin[me.index()] += 1;
        let Some(parent) = parent else {
            shared.no_route_drops += 1;
            if let Some(observer) = ctx.observer() {
                observer.on_drop(
                    ctx.now(),
                    &DropEvent {
                        node: me.0,
                        dst: None,
                        reason: DropReason::NoRoute,
                    },
                );
            }
            return;
        };
        let epoch = shared.manager.node_current(me.index(), ctx.now()).epoch;
        let header = DophyHeader::new(me, self.seq, epoch);
        let wire = MAC_HEADER_BYTES + header.wire_bytes() + self.cfg.payload_bytes;
        drop(shared);
        self.stats.generated += 1;
        let trace = data_trace_id(me.0, self.seq);
        if let Some(observer) = ctx.observer() {
            observer.on_span(
                ctx.now(),
                &SpanEvent {
                    trace_id: trace,
                    node: me.0,
                    phase: SpanPhase::Origin,
                },
            );
        }
        ctx.send_unicast_traced(parent, Arc::new(DataMsg { header }), wire, trace);
    }

    fn handle_data(&mut self, ctx: &mut Ctx<'_>, frame: &Frame, msg: &DataMsg) {
        let key = (msg.header.origin.0, msg.header.seq);
        if !self.dedup.insert(key) {
            self.stats.duplicates += 1;
            return;
        }
        let me = ctx.node_id();
        if me == NodeId::SINK {
            self.sink_deliver(ctx, frame, msg);
        } else {
            self.forward(ctx, frame, msg);
        }
    }

    fn forward(&mut self, ctx: &mut Ctx<'_>, frame: &Frame, msg: &DataMsg) {
        let me = ctx.node_id();
        let mut header = msg.header.clone();
        let mut shared = self.shared.lock();
        if header.hops >= self.cfg.ttl {
            shared.ttl_drops += 1;
            if let Some(observer) = ctx.observer() {
                observer.on_drop(
                    ctx.now(),
                    &DropEvent {
                        node: me.0,
                        dst: None,
                        reason: DropReason::TtlExpired,
                    },
                );
                observer.on_span(
                    ctx.now(),
                    &SpanEvent {
                        trace_id: data_trace_id(header.origin.0, header.seq),
                        node: me.0,
                        phase: SpanPhase::Drop {
                            reason: DropReason::TtlExpired,
                        },
                    },
                );
            }
            return;
        }
        // Ground-truth hop log (harness channel).
        if shared.record_true_hops {
            shared
                .true_hops
                .entry((header.origin.0, header.seq))
                .or_default()
                .push((frame.src.0, me.0, frame.attempt));
        }
        // Encode with the packet's epoch — if this node hasn't received
        // those models (or they aged out), coding is disabled for the rest
        // of the path but the packet still flows.
        if !header.coding_disabled {
            let models = shared
                .manager
                .node_models_for_epoch(me.index(), header.epoch, ctx.now())
                .cloned();
            match models {
                Some(models) => {
                    match encode_hop(
                        &mut header,
                        &self.topo,
                        &self.spaces,
                        &models,
                        frame.src,
                        me,
                        frame.attempt,
                    ) {
                        Ok(()) => {}
                        Err(EncodeError::NotACandidate { .. })
                        | Err(EncodeError::TooManyHops)
                        | Err(EncodeError::Coding(_)) => {
                            header.coding_disabled = true;
                            shared.encode_disabled += 1;
                        }
                    }
                }
                None => {
                    header.coding_disabled = true;
                    shared.encode_disabled += 1;
                }
            }
        } else {
            // Still count the hop for the TTL guard.
            header.hops = header.hops.saturating_add(1);
        }
        let parent = self.router().next_hop();
        let Some(parent) = parent else {
            shared.no_route_drops += 1;
            if let Some(observer) = ctx.observer() {
                observer.on_drop(
                    ctx.now(),
                    &DropEvent {
                        node: me.0,
                        dst: None,
                        reason: DropReason::NoRoute,
                    },
                );
                observer.on_span(
                    ctx.now(),
                    &SpanEvent {
                        trace_id: data_trace_id(header.origin.0, header.seq),
                        node: me.0,
                        phase: SpanPhase::Drop {
                            reason: DropReason::NoRoute,
                        },
                    },
                );
            }
            return;
        };
        drop(shared);
        self.stats.forwarded += 1;
        // The trace id travels with the packet's identity (origin, seq),
        // so every hop of one packet shares a lifecycle.
        let trace = data_trace_id(header.origin.0, header.seq);
        if let Some(observer) = ctx.observer() {
            observer.on_span(
                ctx.now(),
                &SpanEvent {
                    trace_id: trace,
                    node: me.0,
                    phase: SpanPhase::Forward { to: parent.0 },
                },
            );
        }
        let wire = MAC_HEADER_BYTES + header.wire_bytes() + self.cfg.payload_bytes;
        ctx.send_unicast_traced(parent, Arc::new(DataMsg { header }), wire, trace);
    }

    /// Feeds one successfully decoded packet into the inference stack and
    /// the model learners. This is the *only* estimator ingestion point,
    /// and it is reached exclusively from the `Ok` decode arms in
    /// [`Self::sink_deliver`] — quarantined packets can never touch it.
    /// Each observation becomes one typed [`crate::infer::Evidence::Hop`]
    /// event fanned out to every backend; the stack preserves the
    /// historical per-observation backend order, so estimator state stays
    /// bit-identical to the pre-trait sink.
    fn ingest_decoded(
        shared: &mut SinkState,
        now: SimTime,
        decoded: &DecodedPacket,
        prof: Option<&Profiler>,
    ) {
        let t0 = profile::start(prof);
        for obs in &decoded.observations {
            shared.infer.observe(&crate::infer::Evidence::Hop {
                at: now,
                sender: obs.sender.0,
                receiver: obs.receiver.0,
                observation: obs.observation,
            });
            if let (Some(h), Some(a)) = (obs.hop_sym, obs.attempt_sym) {
                shared.manager.observe(h, a);
            }
        }
        profile::stop(prof, Subsystem::EstimatorUpdate, t0);
    }

    fn sink_deliver(&mut self, ctx: &mut Ctx<'_>, frame: &Frame, msg: &DataMsg) {
        let header = &msg.header;
        let n = self.topo.node_count();
        let prof = ctx.profiler();
        let trace = data_trace_id(header.origin.0, header.seq);
        let mut shared = self.shared.lock();
        // Structural pre-checks run before the header is trusted for
        // anything — a corrupted origin would index out of bounds right
        // below, and an impossible hop count would burn model decodes.
        let precheck_outcome = if header.origin.index() >= n {
            shared.decode.malformed += 1;
            Some(DecodeOutcome::Malformed)
        } else if usize::from(header.hops) >= n {
            shared.decode.bad_hop_count += 1;
            Some(DecodeOutcome::BadHopCount)
        } else {
            None
        };
        if let Some(outcome) = precheck_outcome {
            drop(shared);
            if let Some(observer) = ctx.observer() {
                observer.on_decode(
                    ctx.now(),
                    &DecodeEvent {
                        origin: header.origin.0,
                        seq: header.seq,
                        hops: u16::from(header.hops),
                        outcome,
                    },
                );
                observer.on_span(
                    ctx.now(),
                    &SpanEvent {
                        trace_id: trace,
                        node: NodeId::SINK.0,
                        phase: SpanPhase::Decode { outcome },
                    },
                );
            }
            return;
        }
        shared.delivered_per_origin[header.origin.index()] += 1;
        // Complete the ground-truth hop log with the final (observed) hop.
        if shared.record_true_hops {
            shared
                .true_hops
                .entry((header.origin.0, header.seq))
                .or_default()
                .push((frame.src.0, NodeId::SINK.0, frame.attempt));
        }
        // Overhead accounting uses the finished stream (what would be
        // flushed on air at the last hop).
        let hops = usize::from(header.hops) + 1;
        let stream_len = header.wire_stream_len();
        shared.overhead.record(
            hops,
            stream_len,
            dophy_coding::range::EncoderState::WIRE_SIZE + 1 + stream_len,
        );

        let mut ingested: Option<u16> = None;
        let decode_outcome = match shared.manager.models_for_epoch(header.epoch).cloned() {
            None => {
                shared.decode.unknown_epoch += 1;
                DecodeOutcome::UnknownEpoch
            }
            Some(models) => {
                let t0 = profile::start(prof);
                let primary = decode_packet(
                    header,
                    &self.topo,
                    &self.spaces,
                    &models,
                    frame.src,
                    frame.attempt,
                );
                profile::stop(prof, Subsystem::Decode, t0);
                match primary {
                    Ok(decoded) => {
                        shared.decode.ok += 1;
                        Self::ingest_decoded(&mut shared, ctx.now(), &decoded, prof);
                        ingested = Some(decoded.observations.len() as u16);
                        DecodeOutcome::Ok
                    }
                    Err(DecodeError::IndexOutOfRange { .. }) => {
                        // The classic wrong-model signature. Retry once with
                        // the previous in-window epoch: wire-epoch wrap and
                        // stalled dissemination both make the *older* set the
                        // right one, and a wrong retry almost surely fails the
                        // path-consistency check rather than decoding wrong.
                        let fallback = shared
                            .manager
                            .fallback_models_for_epoch(header.epoch)
                            .cloned();
                        let retry = fallback.and_then(|m| {
                            let t0 = profile::start(prof);
                            let res = decode_packet(
                                header,
                                &self.topo,
                                &self.spaces,
                                &m,
                                frame.src,
                                frame.attempt,
                            );
                            profile::stop(prof, Subsystem::Decode, t0);
                            res.ok()
                        });
                        match retry {
                            Some(decoded) => {
                                shared.decode.ok += 1;
                                shared.decode.fallback_ok += 1;
                                Self::ingest_decoded(&mut shared, ctx.now(), &decoded, prof);
                                ingested = Some(decoded.observations.len() as u16);
                                DecodeOutcome::Ok
                            }
                            None => {
                                shared.decode.bad_index += 1;
                                DecodeOutcome::BadIndex
                            }
                        }
                    }
                    Err(DecodeError::PathMismatch { .. }) => {
                        shared.decode.path_mismatch += 1;
                        DecodeOutcome::PathMismatch
                    }
                    Err(DecodeError::Coding(_)) => {
                        shared.decode.coding += 1;
                        DecodeOutcome::Coding
                    }
                    Err(DecodeError::CodingDisabled) => {
                        shared.decode.disabled += 1;
                        DecodeOutcome::Disabled
                    }
                    Err(DecodeError::HopCountOutOfRange { .. }) => {
                        shared.decode.bad_hop_count += 1;
                        DecodeOutcome::BadHopCount
                    }
                    // Unreachable here (the pre-check above already dropped
                    // out-of-range origins), but the decoder reports it for
                    // callers without that screen.
                    Err(DecodeError::OriginOutOfRange { .. }) => {
                        shared.decode.malformed += 1;
                        DecodeOutcome::Malformed
                    }
                }
            }
        };
        if let Some(observer) = ctx.observer() {
            observer.on_decode(
                ctx.now(),
                &DecodeEvent {
                    origin: header.origin.0,
                    seq: header.seq,
                    hops: u16::from(header.hops),
                    outcome: decode_outcome,
                },
            );
            observer.on_span(
                ctx.now(),
                &SpanEvent {
                    trace_id: trace,
                    node: NodeId::SINK.0,
                    phase: SpanPhase::Decode {
                        outcome: decode_outcome,
                    },
                },
            );
            if let Some(observations) = ingested {
                observer.on_span(
                    ctx.now(),
                    &SpanEvent {
                        trace_id: trace,
                        node: NodeId::SINK.0,
                        phase: SpanPhase::Ingest { observations },
                    },
                );
            }
        }
    }
}

impl Protocol for DophyNode {
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        let candidates: Vec<_> = ctx.neighbors().to_vec();
        let mut router = Router::new(ctx.node_id(), &candidates, self.cfg.router);
        router.on_init(ctx);
        self.router = Some(router);
        if ctx.node_id() == NodeId::SINK {
            ctx.set_timer(self.cfg.model_update.update_period, TIMER_MODEL_UPDATE);
        } else {
            let warm = self.cfg.warmup;
            ctx.set_timer(warm, TIMER_TRAFFIC);
            if let Some(churn) = self.cfg.churn {
                self.schedule_churn(ctx, churn.mean_up);
            }
            if let Some(plan) = &self.fault {
                if plan.crash_prone(ctx.node_id().0) {
                    let (up, _) = plan.crash_phase(ctx.node_id().0, 0);
                    ctx.set_timer(up, TIMER_FAULT);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
        if timer == TIMER_CHURN {
            let churn = self.cfg.churn.expect("churn timer implies churn config");
            self.alive = !self.alive;
            ctx.set_radio(self.alive);
            if self.alive {
                // Reboot: fresh routing state and a new traffic schedule.
                self.router.as_mut().expect("initialised").restart(ctx);
                self.schedule_traffic(ctx);
                self.schedule_churn(ctx, churn.mean_up);
            } else {
                self.schedule_churn(ctx, churn.mean_down);
            }
            return;
        }
        if timer == TIMER_FAULT {
            // Injected crash schedule (handled before the alive gate, like
            // churn — it is what flips the gate).
            let plan = Arc::clone(self.fault.as_ref().expect("fault timer implies plan"));
            let me = ctx.node_id().0;
            if self.alive {
                self.alive = false;
                ctx.set_radio(false);
                let (_, down) = plan.crash_phase(me, self.crash_k);
                ctx.set_timer(down, TIMER_FAULT);
            } else {
                // Reboot: fresh routing state and a new traffic schedule.
                self.alive = true;
                ctx.set_radio(true);
                self.router.as_mut().expect("initialised").restart(ctx);
                self.schedule_traffic(ctx);
                self.crash_k += 1;
                let (up, _) = plan.crash_phase(me, self.crash_k);
                ctx.set_timer(up, TIMER_FAULT);
            }
            return;
        }
        if !self.alive {
            return; // dead nodes swallow their timers (rescheduled on reboot)
        }
        if self
            .router
            .as_mut()
            .expect("initialised")
            .on_timer(ctx, timer)
        {
            return;
        }
        match timer {
            TIMER_TRAFFIC => {
                self.generate_packet(ctx);
                self.schedule_traffic(ctx);
            }
            TIMER_MODEL_UPDATE => {
                let switched = {
                    let mut shared = self.shared.lock();
                    let hub = shared.hub;
                    let now = ctx.now();
                    shared.manager.refresh(now, &hub)
                };
                if let Some(epoch) = switched {
                    if let Some(observer) = ctx.observer() {
                        observer.on_epoch_switch(
                            ctx.now(),
                            &EpochSwitchEvent {
                                epoch: epoch as u64,
                            },
                        );
                        // A model refresh originates a dissemination
                        // lifecycle of its own.
                        observer.on_span(
                            ctx.now(),
                            &SpanEvent {
                                trace_id: model_trace_id(epoch as u64),
                                node: ctx.node_id().0,
                                phase: SpanPhase::Origin,
                            },
                        );
                    }
                }
                ctx.set_timer(self.cfg.model_update.update_period, TIMER_MODEL_UPDATE);
            }
            other => panic!("unknown timer {other:?}"),
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame) {
        if !self.alive {
            return; // engine drops these too; belt and braces
        }
        if self
            .router
            .as_mut()
            .expect("initialised")
            .on_frame(ctx, frame)
        {
            return;
        }
        if let Some(msg) = frame.payload_as::<DataMsg>() {
            let mut msg = msg.clone();
            // Receive-time fault injection: the frame's wire bytes pass
            // through the plan, exactly as a radio would hand up a damaged
            // buffer. Structurally unparseable results destroy the frame
            // here; parseable corruption flows on to exercise the
            // downstream quarantine checks.
            if let Some(plan) = self.fault.clone() {
                let mut bytes = msg.header.to_bytes();
                if plan
                    .corrupt_frame(ctx.node_id().0, &mut bytes, DophyHeader::FIXED_WIRE_BYTES)
                    .is_some()
                {
                    // The corruption span carries the packet's *original*
                    // identity — the last trustworthy point in the
                    // lifecycle before the bytes were damaged.
                    if let Some(observer) = ctx.observer() {
                        observer.on_span(
                            ctx.now(),
                            &SpanEvent {
                                trace_id: data_trace_id(msg.header.origin.0, msg.header.seq),
                                node: ctx.node_id().0,
                                phase: SpanPhase::Corrupt,
                            },
                        );
                    }
                    match DophyHeader::from_bytes(&bytes) {
                        Some(header) => msg.header = header,
                        None => {
                            self.shared.lock().corrupt_frame_drops += 1;
                            if let Some(observer) = ctx.observer() {
                                observer.on_drop(
                                    ctx.now(),
                                    &DropEvent {
                                        node: ctx.node_id().0,
                                        dst: None,
                                        reason: DropReason::Corrupt,
                                    },
                                );
                                observer.on_span(
                                    ctx.now(),
                                    &SpanEvent {
                                        trace_id: data_trace_id(
                                            msg.header.origin.0,
                                            msg.header.seq,
                                        ),
                                        node: ctx.node_id().0,
                                        phase: SpanPhase::Drop {
                                            reason: DropReason::Corrupt,
                                        },
                                    },
                                );
                            }
                            return;
                        }
                    }
                }
            }
            self.handle_data(ctx, frame, &msg);
        }
    }

    fn on_send_done(&mut self, ctx: &mut Ctx<'_>, done: &SendDone) {
        self.router
            .as_mut()
            .expect("initialised")
            .on_send_done(ctx, done);
    }
}

/// Builds a complete Dophy simulation: topology, loss processes, one
/// [`DophyNode`] per node, and the shared sink state.
pub fn build_simulation(
    sim: &SimConfig,
    dophy: &DophyConfig,
) -> (Engine<DophyNode>, Arc<Mutex<SinkState>>) {
    let (engine, shared, _) = build_simulation_with_faults(sim, dophy, None);
    (engine, shared)
}

/// [`build_simulation`] plus an optional deterministic fault plan: frame
/// corruption at every receiver, crash/reboot windows on crash-prone
/// nodes, and dissemination faults against the model manager. With
/// `faults: None` the run performs no fault draws and is bit-identical to
/// [`build_simulation`]. The returned plan exposes injection counters.
pub fn build_simulation_with_faults(
    sim: &SimConfig,
    dophy: &DophyConfig,
    faults: Option<&FaultConfig>,
) -> (
    Engine<DophyNode>,
    Arc<Mutex<SinkState>>,
    Option<Arc<FaultPlan>>,
) {
    let parts = assemble_simulation(sim, dophy, faults);
    let engine = Engine::new(
        parts.topo,
        &parts.models,
        sim.mac,
        parts.hub,
        parts.protocols,
    );
    (engine, parts.shared, parts.plan)
}

/// Sharded twin of [`build_simulation`]: identical topology, loss models,
/// protocols, and shared sink state, driven by the multi-core
/// [`ShardedEngine`]. See [`build_sharded_simulation_with_faults`] for the
/// preconditions.
pub fn build_sharded_simulation(
    sim: &SimConfig,
    dophy: &DophyConfig,
    shards: u16,
) -> (ShardedEngine<DophyNode>, Arc<Mutex<SinkState>>) {
    let (engine, shared, _) = build_sharded_simulation_with_faults(sim, dophy, None, shards);
    (engine, shared)
}

/// Sharded twin of [`build_simulation_with_faults`]. Results are
/// byte-identical across shard and thread counts (but not to the
/// single-loop engine — see the `dophy_sim::shard` docs).
///
/// Frame-corruption faults are fully supported: corruption draws come
/// from per-receiver-node RNG streams (see [`FaultPlan::corrupt_frame`]),
/// and a node's frame-arrival order is shard- and thread-invariant, so a
/// corrupted run stays byte-identical at every shard count.
///
/// # Panics
///
/// One config shape cannot keep the cross-shard determinism contract and
/// is refused up front — **dissemination faster than the conservative
/// window**: non-sink nodes must activate new model epochs no earlier
/// than one window after a sink refresh, otherwise a same-window read of
/// the model manager could see the flood early on some shard
/// interleavings. This requires `max_propagation_delay / (max_depth + 1)`
/// to exceed the window `backoff_us/2 + frame_overhead_us` — true by
/// orders of magnitude for realistic configs.
pub fn build_sharded_simulation_with_faults(
    sim: &SimConfig,
    dophy: &DophyConfig,
    faults: Option<&FaultConfig>,
    shards: u16,
) -> (
    ShardedEngine<DophyNode>,
    Arc<Mutex<SinkState>>,
    Option<Arc<FaultPlan>>,
) {
    let parts = assemble_simulation(sim, dophy, faults);
    let window_us = sim.mac.backoff_us / 2 + sim.mac.frame_overhead_us;
    let max_depth = parts
        .topo
        .hops_to_sink()
        .into_iter()
        .filter(|&d| d != usize::MAX)
        .max()
        .unwrap_or(0) as u64;
    let per_hop_us = dophy.model_update.max_propagation_delay.as_micros() / (max_depth + 1);
    assert!(
        per_hop_us > window_us,
        "model dissemination per-hop delay ({per_hop_us}µs) must exceed the \
         conservative window ({window_us}µs) for shard-count-invariant epoch \
         activation; raise max_propagation_delay or use the single-loop engine"
    );
    let engine = ShardedEngine::new(
        parts.topo,
        &parts.models,
        sim.mac,
        parts.hub,
        parts.protocols,
        shards,
    );
    (engine, parts.shared, parts.plan)
}

/// Everything both engine builders assemble before handing the parts to an
/// engine: topology, loss models, the shared sink state, the fault plan,
/// and one [`DophyNode`] per node.
struct SimParts {
    topo: Arc<Topology>,
    models: Vec<LossModel>,
    hub: RngHub,
    shared: Arc<Mutex<SinkState>>,
    plan: Option<Arc<FaultPlan>>,
    protocols: Vec<DophyNode>,
}

fn assemble_simulation(
    sim: &SimConfig,
    dophy: &DophyConfig,
    faults: Option<&FaultConfig>,
) -> SimParts {
    let hub = sim.hub();
    let topo = Arc::new(sim.topology());
    let models = sim.loss_models(&topo);
    let max_degree = (0..topo.node_count())
        .map(|i| topo.neighbors(NodeId::from_index(i)).len())
        .max()
        .unwrap_or(1)
        .max(1);
    let spaces = SymbolSpaces::new(
        max_degree,
        sim.mac.max_attempts,
        dophy.aggregation,
        dophy.refine,
    );
    let n = topo.node_count();
    let plan = faults.map(|cfg| Arc::new(FaultPlan::new(*cfg, &hub)));
    let mut manager = ModelManager::new(spaces.clone(), dophy.model_update, topo.hops_to_sink());
    if let Some(dissem) = faults.and_then(|f| f.dissemination) {
        manager.set_dissemination_faults(dissem);
    }
    let shared = Arc::new(Mutex::new(SinkState {
        manager,
        infer: crate::infer::Inference::new(dophy.tracking),
        decode: DecodeStats::default(),
        overhead: OverheadStats::default(),
        sent_per_origin: vec![0; n],
        delivered_per_origin: vec![0; n],
        true_hops: HashMap::new(),
        record_true_hops: true,
        no_route_drops: 0,
        ttl_drops: 0,
        encode_disabled: 0,
        corrupt_frame_drops: 0,
        hub,
    }));
    let protocols: Vec<DophyNode> = (0..n)
        .map(|_| {
            DophyNode::with_faults(
                *dophy,
                Arc::clone(&topo),
                spaces.clone(),
                Arc::clone(&shared),
                plan.clone(),
            )
        })
        .collect();
    SimParts {
        topo,
        models,
        hub,
        shared,
        plan,
        protocols,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dophy_sim::{LinkDynamics, MacConfig, Placement, RadioModel};

    fn small_sim() -> SimConfig {
        SimConfig {
            placement: Placement::Grid {
                side: 4,
                spacing: 14.0,
            },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics: LinkDynamics::Static,
            seed: 77,
        }
    }

    fn fast_dophy() -> DophyConfig {
        DophyConfig {
            traffic_period: SimDuration::from_secs(2),
            warmup: SimDuration::from_secs(30),
            ..DophyConfig::default()
        }
    }

    #[test]
    fn packets_flow_and_decode() {
        let (mut engine, shared) = build_simulation(&small_sim(), &fast_dophy());
        engine.start();
        engine.run_for(SimDuration::from_secs(600));
        let s = shared.lock();
        assert!(s.overhead.packets > 500, "packets {}", s.overhead.packets);
        // Dissemination transients legitimately disable coding on a small
        // fraction of packets (forwarders that haven't received the
        // packet's epoch yet).
        assert!(
            s.decode.success_ratio() > 0.95,
            "decode stats {:?}",
            s.decode
        );
        assert_eq!(
            s.decode.bad_index + s.decode.path_mismatch + s.decode.coding,
            0,
            "hard decode failures must not occur: {:?}",
            s.decode
        );
        assert!(s.total_delivery_ratio().unwrap() > 0.9);
        assert!(s.infer.in_band.covered_links() > 10);
    }

    #[test]
    fn sharded_full_stack_is_shard_invariant() {
        // The entire Dophy stack (routing, coding, sink decode, model
        // refreshes) must produce byte-identical results regardless of how
        // the sharded engine partitions the nodes or how many threads
        // drive it.
        let fingerprint = |shards: u16, threads: usize| -> String {
            let (mut engine, shared, _) =
                build_sharded_simulation_with_faults(&small_sim(), &fast_dophy(), None, shards);
            engine.set_threads(threads);
            engine.start();
            engine.run_for(SimDuration::from_secs(300));
            let s = shared.lock();
            format!(
                "now={:?} events={} overhead={:?} decode={:?} sent={:?} delivered={:?} \
                 drops=({},{},{},{}) refreshes={} links={:?}",
                engine.now(),
                engine.events_processed(),
                s.overhead,
                s.decode,
                s.sent_per_origin,
                s.delivered_per_origin,
                s.no_route_drops,
                s.ttl_drops,
                s.encode_disabled,
                s.corrupt_frame_drops,
                s.manager.refreshes,
                engine.trace().snapshot_links(),
            )
        };
        let baseline = fingerprint(1, 1);
        for (shards, threads) in [(2, 1), (4, 2), (7, 3)] {
            assert_eq!(
                baseline,
                fingerprint(shards, threads),
                "shards={shards} threads={threads} diverged from shards=1"
            );
        }
        // And the run did real work: the sink decoded packets.
        assert!(baseline.contains("events="));
    }

    #[test]
    fn decoded_paths_match_ground_truth() {
        // Re-decode the delivered packets offline and compare to the logged
        // true hops: paths and attempts must agree exactly (refine=true).
        let cfg = DophyConfig {
            refine: true,
            ..fast_dophy()
        };
        let (mut engine, shared) = build_simulation(&small_sim(), &cfg);
        engine.start();
        engine.run_for(SimDuration::from_secs(300));
        let s = shared.lock();
        assert_eq!(
            s.decode.bad_index + s.decode.path_mismatch + s.decode.coding,
            0,
            "no decode failures in a static network: {:?}",
            s.decode
        );
        assert!(s.decode.ok > 100);
    }

    #[test]
    fn estimator_tracks_true_loss() {
        let (mut engine, shared) = build_simulation(
            &SimConfig {
                placement: Placement::Grid {
                    side: 4,
                    spacing: 16.0,
                },
                ..small_sim()
            },
            &DophyConfig {
                traffic_period: SimDuration::from_secs(1),
                warmup: SimDuration::from_secs(30),
                ..DophyConfig::default()
            },
        );
        engine.start();
        engine.run_for(SimDuration::from_secs(1200));
        let s = shared.lock();
        let r = engine.topology().links().to_vec();
        let estimates = s.infer.in_band.estimates(7, 30);
        assert!(!estimates.is_empty());
        let mut errs = Vec::new();
        for ((src, dst), est) in &estimates {
            let link = engine
                .topology()
                .link_id(NodeId(*src), NodeId(*dst))
                .expect("estimated link exists");
            let truth = engine.trace().links()[link]
                .empirical_prr()
                .expect("estimated link carried traffic");
            errs.push((est.p_success - truth).abs());
            let _ = &r;
        }
        let mae = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mae < 0.08, "estimator MAE vs truth {mae}");
    }

    #[test]
    fn model_updates_happen_and_cost_bytes() {
        let cfg = DophyConfig {
            traffic_period: SimDuration::from_secs(1),
            warmup: SimDuration::from_secs(20),
            model_update: ModelUpdateConfig {
                update_period: SimDuration::from_secs(60),
                min_observations: 50,
                ..ModelUpdateConfig::default()
            },
            ..DophyConfig::default()
        };
        let (mut engine, shared) = build_simulation(&small_sim(), &cfg);
        engine.start();
        engine.run_for(SimDuration::from_secs(600));
        let s = shared.lock();
        assert!(
            s.manager.refreshes >= 2,
            "refreshes {}",
            s.manager.refreshes
        );
        assert!(s.manager.dissemination_bytes > 0);
        // Updated models must still decode (epoch machinery consistent);
        // only dissemination transients may disable coding.
        assert!(s.decode.success_ratio() > 0.93, "{:?}", s.decode);
        assert_eq!(
            s.decode.bad_index + s.decode.path_mismatch,
            0,
            "{:?}",
            s.decode
        );
    }

    #[test]
    fn overhead_grows_with_hops() {
        let (mut engine, shared) = build_simulation(
            &SimConfig {
                placement: Placement::Line {
                    n: 6,
                    spacing: 22.0,
                },
                ..small_sim()
            },
            &fast_dophy(),
        );
        engine.start();
        engine.run_for(SimDuration::from_secs(900));
        let s = shared.lock();
        let by_hops = &s.overhead.stream_by_hops;
        // Mean stream bytes must be non-decreasing in path length (among
        // well-populated rows).
        let means: Vec<(usize, f64)> = by_hops
            .iter()
            .enumerate()
            .filter(|(_, st)| st.count() > 20)
            .map(|(h, st)| (h, st.mean()))
            .collect();
        assert!(means.len() >= 2, "need multiple path lengths: {means:?}");
        for w in means.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 0.5,
                "stream bytes should grow with hops: {means:?}"
            );
        }
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let (mut engine, shared) = build_simulation(&small_sim(), &fast_dophy());
            engine.start();
            engine.run_for(SimDuration::from_secs(200));
            let s = shared.lock();
            (
                s.overhead.packets,
                s.overhead.stream_bytes,
                s.decode.ok,
                s.sent_per_origin.clone(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dedup_suppresses_duplicates() {
        let mut d = DedupSet::new(3);
        assert!(d.insert((1, 1)));
        assert!(!d.insert((1, 1)));
        assert!(d.insert((1, 2)));
        assert!(d.insert((1, 3)));
        // Evicts (1,1).
        assert!(d.insert((1, 4)));
        assert!(d.insert((1, 1)), "evicted key is fresh again");
    }
}
