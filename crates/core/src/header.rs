//! The Dophy packet header carried by every data packet.
//!
//! Layout (conceptual wire format):
//!
//! | field        | bytes | notes                                        |
//! |--------------|-------|----------------------------------------------|
//! | origin       | 2     | source node id (plaintext — anchors decoding)|
//! |              |       | wire cap: ids ≤ 65535 (engine ids are wider) |
//! | seq          | 4     | per-origin sequence number                   |
//! | epoch        | 1     | probability-model epoch the stream uses      |
//! | hops         | 1     | hop counter / TTL guard                      |
//! | coder state  | 12    | suspended range-encoder state                |
//! | stream       | var   | arithmetic-coded hop records                 |
//!
//! The fixed part is [`DophyHeader::FIXED_WIRE_BYTES`]; the variable part
//! grows as hops append symbols. Overhead accounting distinguishes the
//! *measurement overhead* (everything Dophy adds: fixed part minus what any
//! collection header would carry, plus the stream) from the base packet.

use dophy_coding::range::EncoderState;
use dophy_sim::NodeId;
use serde::{Deserialize, Serialize};

/// Model-epoch identifier (wraps at 255; the sink keeps a history window).
pub type Epoch = u8;

/// Dophy's in-packet measurement header.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DophyHeader {
    /// Originating node.
    pub origin: NodeId,
    /// Per-origin sequence number.
    pub seq: u32,
    /// Probability-model epoch the stream is encoded under (stamped by the
    /// origin; all hops must encode with this epoch's models).
    pub epoch: Epoch,
    /// Hops traversed so far (TTL guard against transient routing loops).
    pub hops: u8,
    /// True when some hop could not encode (missing epoch models); the
    /// packet still flows but the sink skips tomography for it.
    pub coding_disabled: bool,
    /// Suspended arithmetic-coder state.
    pub coder_state: EncoderState,
    /// Arithmetic-coded hop records emitted so far.
    pub stream: Vec<u8>,
}

impl DophyHeader {
    /// Fixed header bytes on the wire: origin 2 + seq 4 + epoch 1 + hops 1,
    /// plus coder state 12 (the `coding_disabled` flag rides in a spare bit
    /// of `hops`).
    pub const FIXED_WIRE_BYTES: usize = 2 + 4 + 1 + 1 + EncoderState::WIRE_SIZE;

    /// Fresh header written by the origin (no symbols yet).
    pub fn new(origin: NodeId, seq: u32, epoch: Epoch) -> Self {
        Self {
            origin,
            seq,
            epoch,
            hops: 0,
            coding_disabled: false,
            coder_state: EncoderState::fresh(),
            stream: Vec::new(),
        }
    }

    /// Total Dophy header bytes on the wire right now.
    pub fn wire_bytes(&self) -> usize {
        Self::FIXED_WIRE_BYTES + self.stream.len()
    }

    /// Measurement overhead attributable to Dophy *beyond* a plain
    /// collection header (which would already carry origin/seq/hops = 7
    /// bytes): the coder state, the epoch byte, and the stream.
    pub fn measurement_overhead_bytes(&self) -> usize {
        EncoderState::WIRE_SIZE + 1 + self.stream.len()
    }

    /// Finished-stream length if flushed now (what the sink will decode).
    pub fn finished_stream_len(&self) -> usize {
        // Mirrors RangeEncoder::finished_len_hint: pending cache bytes + 4.
        self.stream.len() + usize::from(self.coder_state.cache_size) + 4
    }

    /// On-air stream length after wire trimming (leading zero byte and
    /// trailing zeros removed) — the number the overhead figures report.
    pub fn wire_stream_len(&self) -> usize {
        use dophy_coding::range::RangeEncoder;
        RangeEncoder::resume(self.coder_state, self.stream.clone())
            .finish_wire()
            .map(|w| w.len())
            .unwrap_or_else(|_| self.finished_stream_len())
    }

    /// Serializes the in-flight header to its wire layout (the exact bytes
    /// a TinyOS implementation would put in the packet): big-endian fixed
    /// fields, `coding_disabled` in the top bit of the hops byte, then the
    /// raw suspended stream.
    ///
    /// The result is always `wire_bytes()` long — the struct's byte
    /// accounting is the real serialized size, not an estimate.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes());
        // The wire layout carries a 2-byte origin: the dophy protocol
        // stack addresses at most 65536 nodes even though engine node ids
        // are 32-bit (the builder rejects larger topologies up front).
        let origin =
            u16::try_from(self.origin.0).expect("dophy wire format carries 16-bit node ids");
        out.extend_from_slice(&origin.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.push(self.epoch);
        debug_assert!(self.hops < 0x80, "hops field is 7 bits");
        out.push(self.hops | u8::from(self.coding_disabled) << 7);
        // Coder state: low is 33 bits → 5 bytes; range 4; cache 1;
        // cache_size 2.
        let low = self.coder_state.low;
        debug_assert!(low < 1u64 << 33);
        out.push((low >> 32) as u8);
        out.extend_from_slice(&((low & 0xFFFF_FFFF) as u32).to_be_bytes());
        out.extend_from_slice(&self.coder_state.range.to_be_bytes());
        out.push(self.coder_state.cache);
        out.extend_from_slice(&self.coder_state.cache_size.to_be_bytes());
        out.extend_from_slice(&self.stream);
        debug_assert_eq!(out.len(), self.wire_bytes());
        out
    }

    /// Parses a header serialized with [`to_bytes`](Self::to_bytes);
    /// everything after the fixed fields is the stream. Returns `None` on
    /// truncated input.
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::FIXED_WIRE_BYTES {
            return None;
        }
        let origin = NodeId(u32::from(u16::from_be_bytes([buf[0], buf[1]])));
        let seq = u32::from_be_bytes([buf[2], buf[3], buf[4], buf[5]]);
        let epoch = buf[6];
        let hops = buf[7] & 0x7F;
        let coding_disabled = buf[7] & 0x80 != 0;
        // `low` is a 33-bit quantity: its top byte carries only the carry
        // bit. Anything else is corruption.
        if buf[8] > 1 {
            return None;
        }
        let low = (u64::from(buf[8]) << 32)
            | u64::from(u32::from_be_bytes([buf[9], buf[10], buf[11], buf[12]]));
        let range = u32::from_be_bytes([buf[13], buf[14], buf[15], buf[16]]);
        let cache = buf[17];
        let cache_size = u16::from_be_bytes([buf[18], buf[19]]);
        // A suspended coder always holds at least one pending cache byte
        // (a fresh encoder starts at 1 and every flush re-arms it), so
        // zero is corruption — and it would underflow the flush loop.
        if cache_size == 0 {
            return None;
        }
        // Structural envelope of a suspended encoder: renormalisation
        // keeps `range >= TOP`, and interval nesting keeps
        // `low + range < 2^33`. States outside it are corruption and
        // would overflow `low` when the next hop encodes onto them.
        if range < dophy_coding::range::TOP || low + u64::from(range) >= 1u64 << 33 {
            return None;
        }
        Some(Self {
            origin,
            seq,
            epoch,
            hops,
            coding_disabled,
            coder_state: EncoderState {
                low,
                range,
                cache,
                cache_size,
            },
            stream: buf[Self::FIXED_WIRE_BYTES..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_header_sizes() {
        let h = DophyHeader::new(NodeId(7), 42, 3);
        assert_eq!(h.wire_bytes(), DophyHeader::FIXED_WIRE_BYTES);
        assert_eq!(h.hops, 0);
        assert!(!h.coding_disabled);
        // 20 bytes fixed: 2+4+1+1+12.
        assert_eq!(DophyHeader::FIXED_WIRE_BYTES, 20);
        assert_eq!(h.measurement_overhead_bytes(), 13);
    }

    #[test]
    fn wire_bytes_grow_with_stream() {
        let mut h = DophyHeader::new(NodeId(1), 1, 0);
        h.stream.extend_from_slice(&[1, 2, 3]);
        assert_eq!(h.wire_bytes(), DophyHeader::FIXED_WIRE_BYTES + 3);
        assert_eq!(h.measurement_overhead_bytes(), 16);
    }

    #[test]
    fn wire_serialization_round_trips() {
        use dophy_coding::range::EncoderState;
        let mut h = DophyHeader::new(NodeId(513), 0xDEAD_BEEF, 201);
        h.hops = 9;
        h.coding_disabled = true;
        // A state inside the suspended-encoder envelope (range >= TOP,
        // low + range < 2^33) — anything outside it no longer parses.
        h.coder_state = EncoderState {
            low: (1u64 << 32) | 0x1234_5678,
            range: 0x01FF_00FF,
            cache: 0xAB,
            cache_size: 3,
        };
        h.stream = vec![9, 8, 7, 6];
        let bytes = h.to_bytes();
        assert_eq!(bytes.len(), h.wire_bytes());
        let back = DophyHeader::from_bytes(&bytes).expect("parses");
        assert_eq!(back, h);
    }

    #[test]
    fn truncated_header_rejected() {
        let h = DophyHeader::new(NodeId(1), 1, 0);
        let bytes = h.to_bytes();
        assert!(DophyHeader::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(DophyHeader::from_bytes(&[]).is_none());
        // Exactly the fixed part parses with an empty stream.
        let back = DophyHeader::from_bytes(&bytes).unwrap();
        assert!(back.stream.is_empty());
    }

    #[test]
    fn corrupt_coder_state_rejected() {
        let good = DophyHeader::new(NodeId(1), 1, 0).to_bytes();
        assert!(DophyHeader::from_bytes(&good).is_some());
        // cache_size == 0: no suspended encoder holds zero cache bytes,
        // and flushing such a state would underflow.
        let mut b = good.clone();
        b[18] = 0;
        b[19] = 0;
        assert!(DophyHeader::from_bytes(&b).is_none());
        // range below the renormalisation floor.
        let mut b = good.clone();
        b[13..17].copy_from_slice(&[0, 0, 0, 1]);
        assert!(DophyHeader::from_bytes(&b).is_none());
        // low + range outside the 33-bit interval envelope (fresh state
        // keeps range = u32::MAX, so maxing out low breaks nesting).
        let mut b = good.clone();
        b[8..13].copy_from_slice(&[1, 0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(DophyHeader::from_bytes(&b).is_none());
    }

    #[test]
    fn finished_len_accounts_flush_tail() {
        let h = DophyHeader::new(NodeId(1), 1, 0);
        // Fresh coder: cache_size 1 → flush adds 5 bytes total.
        assert_eq!(h.finished_stream_len(), 5);
        // ...all of which trim away on the wire when nothing was encoded.
        assert_eq!(h.wire_stream_len(), 0);
    }
}
