//! Macrobenchmarks: simulator and full-stack throughput — how much
//! simulated network time one wall-clock second buys, which bounds how
//! large the evaluation sweeps can go.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dophy::protocol::{build_simulation, DophyConfig};
use dophy_routing::{RouterConfig, RoutingOnlyNode};
use dophy_sim::{Engine, LinkDynamics, MacConfig, Placement, RadioModel, SimConfig, SimDuration};
use std::sync::Arc;

fn sim_config(n: u32, seed: u64) -> SimConfig {
    SimConfig {
        placement: Placement::UniformDisk {
            n,
            radius: 120.0 * (f64::from(n) / 200.0).sqrt(),
        },
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed,
    }
}

fn bench_routing_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-routing-only");
    g.sample_size(10);
    for n in [50u32, 200] {
        g.bench_with_input(BenchmarkId::new("60s-sim", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = sim_config(n, 1);
                let topo = Arc::new(cfg.topology());
                let models = cfg.loss_models(&topo);
                let protos = (0..topo.node_count())
                    .map(|_| RoutingOnlyNode::new(RouterConfig::default()))
                    .collect();
                let mut e = Engine::new(topo, &models, cfg.mac, cfg.hub(), protos);
                e.start();
                e.run_for(SimDuration::from_secs(60));
                black_box(e.trace().broadcast_tx)
            });
        });
    }
    g.finish();
}

fn bench_full_stack(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-full-stack");
    g.sample_size(10);
    for n in [50u32, 200] {
        g.bench_with_input(BenchmarkId::new("120s-sim", n), &n, |b, &n| {
            b.iter(|| {
                let sim = sim_config(n, 2);
                let dophy = DophyConfig {
                    traffic_period: SimDuration::from_secs(5),
                    warmup: SimDuration::from_secs(30),
                    ..DophyConfig::default()
                };
                let (mut engine, shared) = build_simulation(&sim, &dophy);
                engine.start();
                engine.run_for(SimDuration::from_secs(120));
                let packets = shared.lock().overhead.packets;
                black_box(packets)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_routing_only, bench_full_stack);
criterion_main!(benches);
