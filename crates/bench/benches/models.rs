//! Microbenchmarks: frequency-model maintenance and wire serialization.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dophy_coding::model::{AdaptiveModel, FenwickTree, StaticModel, SymbolModel};
use dophy_coding::serialize::ModelBlob;

fn bench_fenwick(c: &mut Criterion) {
    let mut g = c.benchmark_group("fenwick");
    for n in [8usize, 64, 256] {
        g.throughput(Throughput::Elements(10_000));
        g.bench_with_input(BenchmarkId::new("add+search", n), &n, |b, &n| {
            let mut t = FenwickTree::new(n);
            for i in 0..n {
                t.add(i, 1);
            }
            b.iter(|| {
                let mut acc = 0usize;
                for i in 0..10_000usize {
                    t.add(i % n, 1);
                    acc += t.search((i % t.total() as usize) as u32);
                }
                black_box(acc)
            });
        });
    }
    g.finish();
}

fn bench_model_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("adaptive-model");
    g.throughput(Throughput::Elements(10_000));
    for n in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("observe", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = AdaptiveModel::new(n);
                for i in 0..10_000usize {
                    m.observe(i % n);
                }
                black_box(m.total())
            });
        });
    }
    g.bench_function("snapshot-16", |b| {
        let mut m = AdaptiveModel::new(16);
        for i in 0..5_000usize {
            m.observe(i * i % 16);
        }
        b.iter(|| black_box(m.snapshot().total()));
    });
    g.finish();
}

fn bench_wire_blobs(c: &mut Criterion) {
    let mut g = c.benchmark_group("model-blob");
    let model = StaticModel::from_frequencies(&[40_000, 9_000, 1_200, 300, 40, 7, 3, 1]);
    g.bench_function("encode", |b| {
        b.iter(|| black_box(ModelBlob::encode(&model).wire_size()));
    });
    let blob = ModelBlob::encode(&model);
    g.bench_function("decode", |b| {
        b.iter(|| black_box(blob.decode().unwrap().total()));
    });
    g.bench_function("canonical", |b| {
        b.iter(|| black_box(ModelBlob::canonical(&model).1.total()));
    });
    g.finish();
}

criterion_group!(benches, bench_fenwick, bench_model_update, bench_wire_blobs);
criterion_main!(benches);
