//! Microbenchmarks: sink-side inference — the truncated/censored geometric
//! MLE and the traditional-tomography solvers. These run once per
//! reporting interval at the sink, so per-call latency across realistic
//! problem sizes is the figure of merit.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dophy::baseline::{PathMeasurement, TraditionalConfig, TraditionalTomography};
use dophy::estimator::LinkEstimator;
use dophy_coding::aggregate::AttemptObservation;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn filled_estimator(n: usize, p: f64, cap: Option<u16>) -> LinkEstimator {
    let mut e = LinkEstimator::new();
    let mut rng = SmallRng::seed_from_u64(9);
    let mut fed = 0;
    while fed < n {
        let mut a = 1u16;
        while rng.gen::<f64>() >= p && a <= 7 {
            a += 1;
        }
        if a > 7 {
            continue;
        }
        fed += 1;
        match cap {
            Some(c) if a >= c => e.observe(AttemptObservation::Range { lo: c, hi: 7 }),
            _ => e.observe(AttemptObservation::Exact(a)),
        }
    }
    e
}

fn bench_mle(c: &mut Criterion) {
    let mut g = c.benchmark_group("link-mle");
    for n in [100usize, 1_000, 10_000] {
        let e = filled_estimator(n, 0.7, Some(4));
        g.bench_with_input(BenchmarkId::new("censored", n), &e, |b, e| {
            b.iter(|| black_box(e.mle(7).unwrap().p_success));
        });
    }
    let e = filled_estimator(1_000, 0.7, None);
    g.bench_function("naive-1000", |b| {
        b.iter(|| black_box(e.naive().unwrap().p_success));
    });
    g.finish();
}

/// Builds a synthetic measurement set shaped like a collection tree:
/// `origins` chains of depth up to 5 sharing links near the sink.
fn tree_measurements(origins: u32) -> TraditionalTomography {
    let mut t = TraditionalTomography::new();
    let mut rng = SmallRng::seed_from_u64(4);
    for o in 1..=origins {
        let depth = 1 + (o % 5);
        let mut path = Vec::new();
        let mut cur = o;
        for _ in 0..depth {
            let next = cur / 2;
            path.push((cur, next));
            cur = next;
            if cur == 0 {
                break;
            }
        }
        let dr: f64 = 0.98f64.powi(path.len() as i32);
        let sent: u64 = 500;
        let delivered = (sent as f64 * dr * rng.gen_range(0.95..1.0)) as u64;
        t.add(PathMeasurement {
            path,
            sent,
            delivered,
        });
    }
    t
}

fn bench_traditional(c: &mut Criterion) {
    let mut g = c.benchmark_group("traditional-tomography");
    g.sample_size(20);
    for origins in [50u32, 200, 400] {
        let t = tree_measurements(origins);
        let cfg = TraditionalConfig::default();
        g.bench_with_input(BenchmarkId::new("em", origins), &t, |b, t| {
            b.iter(|| black_box(t.estimate_em(&cfg).len()));
        });
        g.bench_with_input(BenchmarkId::new("logls", origins), &t, |b, t| {
            b.iter(|| black_box(t.estimate_logls(&cfg).len()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mle, bench_traditional);
criterion_main!(benches);
