//! Figure-regeneration benchmarks: times one representative experiment
//! end-to-end (in quick mode) so regressions in the harness itself are
//! caught. The full evaluation is regenerated with the `experiments`
//! binary, not here — criterion repetition of hour-long sweeps would be
//! wasteful.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dophy_bench::figures::{canonical_dophy, canonical_sim};
use dophy_bench::{run_scenario, RunSpec};
use dophy_sim::SimDuration;

fn bench_scenario_runner(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure-harness");
    g.sample_size(10);
    g.bench_function("canonical-quick-300s", |b| {
        b.iter(|| {
            let spec = RunSpec {
                checkpoints: true,
                ..RunSpec::new(
                    canonical_sim(1, true),
                    canonical_dophy(),
                    SimDuration::from_secs(300),
                )
            };
            let out = run_scenario(&spec);
            black_box((out.overhead.packets, out.truth.len()))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_scenario_runner);
criterion_main!(benches);
