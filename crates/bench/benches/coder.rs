//! Microbenchmarks: range coder and baseline coders.
//!
//! Per-symbol throughput matters because every forwarded packet pays one
//! encode per hop on a 16 MHz-class sensor MCU in the real system; here we
//! just pin the relative costs of the coding options.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dophy_coding::bitio::{BitReader, BitWriter};
use dophy_coding::elias::{gamma_decode, gamma_encode};
use dophy_coding::golomb::RiceCoder;
use dophy_coding::model::{AdaptiveModel, StaticModel, SymbolModel};
use dophy_coding::range::{EncoderState, RangeDecoder, RangeEncoder};

const N: usize = 10_000;

fn symbols(n_alphabet: usize) -> Vec<usize> {
    // Skewed quasi-geometric stream, like real retransmission counts.
    (0..N)
        .map(|i| {
            let x = (i as u64).wrapping_mul(2654435761) % 100;
            match x {
                0..=69 => 0,
                70..=89 => 1,
                90..=96 => 2,
                _ => 3,
            }
            .min(n_alphabet - 1)
        })
        .collect()
}

fn bench_range_coder(c: &mut Criterion) {
    let mut g = c.benchmark_group("range-coder");
    g.throughput(Throughput::Elements(N as u64));
    let syms = symbols(8);

    g.bench_function("encode/static", |b| {
        let mut model = StaticModel::truncated_geometric(8, 0.7);
        b.iter(|| {
            let mut enc = RangeEncoder::new();
            for &s in &syms {
                model.encode_symbol(&mut enc, s).unwrap();
            }
            black_box(enc.finish().unwrap().len())
        });
    });

    g.bench_function("encode/adaptive", |b| {
        b.iter(|| {
            let mut model = AdaptiveModel::new(8);
            let mut enc = RangeEncoder::new();
            for &s in &syms {
                model.encode_symbol(&mut enc, s).unwrap();
            }
            black_box(enc.finish().unwrap().len())
        });
    });

    g.bench_function("decode/static", |b| {
        let mut model = StaticModel::truncated_geometric(8, 0.7);
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            model.encode_symbol(&mut enc, s).unwrap();
        }
        let bytes = enc.finish().unwrap();
        b.iter(|| {
            let mut dec = RangeDecoder::new(&bytes).unwrap();
            let mut acc = 0usize;
            for _ in 0..N {
                acc += model.decode_symbol(&mut dec).unwrap();
            }
            black_box(acc)
        });
    });

    // The per-hop pattern: resume, encode two symbols, suspend.
    g.bench_function("hop-encode-suspend", |b| {
        let hop_model = StaticModel::truncated_geometric(12, 0.5);
        let att_model = StaticModel::truncated_geometric(4, 0.7);
        b.iter(|| {
            let mut state = EncoderState::fresh();
            let mut carried: Vec<u8> = Vec::new();
            for i in 0..N / 2 {
                let mut enc = RangeEncoder::resume(state, std::mem::take(&mut carried));
                let (c, f) = hop_model.lookup(i % 3);
                enc.encode(c, f, hop_model.total()).unwrap();
                let (c, f) = att_model.lookup(i % 2);
                enc.encode(c, f, att_model.total()).unwrap();
                let (s, bytes) = enc.suspend();
                state = s;
                carried = bytes;
            }
            black_box(carried.len())
        });
    });
    g.finish();
}

fn bench_baseline_coders(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline-coders");
    g.throughput(Throughput::Elements(N as u64));
    let values: Vec<u64> = symbols(8).iter().map(|&s| s as u64).collect();

    for k in [0u32, 1] {
        g.bench_with_input(BenchmarkId::new("rice-encode", k), &k, |b, &k| {
            let coder = RiceCoder::new(k);
            b.iter(|| {
                let mut w = BitWriter::new();
                for &v in &values {
                    coder.encode(&mut w, v);
                }
                black_box(w.finish().len())
            });
        });
    }

    g.bench_function("rice-decode", |b| {
        let coder = RiceCoder::new(0);
        let mut w = BitWriter::new();
        for &v in &values {
            coder.encode(&mut w, v);
        }
        let bytes = w.finish();
        b.iter(|| {
            let mut r = BitReader::new(&bytes);
            let mut acc = 0u64;
            for _ in 0..N {
                acc += coder.decode(&mut r).unwrap();
            }
            black_box(acc)
        });
    });

    g.bench_function("elias-gamma-roundtrip", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &v in &values {
                gamma_encode(&mut w, v + 1);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            let mut acc = 0u64;
            for _ in 0..N {
                acc += gamma_decode(&mut r).unwrap();
            }
            black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_range_coder, bench_baseline_coders);
criterion_main!(benches);
