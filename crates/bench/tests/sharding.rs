//! Sharded-engine integration: the multi-core engine must be a drop-in
//! replacement at the figure level — same seed and any shard count must
//! yield byte-identical figure JSON — and must keep delivering the full
//! Dophy stack at the 10k-node scale it exists for.

use dophy::infer::{Estimator, EstimatorKind, EvidenceLog, Inference, SnapshotQuery};
use dophy::protocol::DophyConfig;
use dophy_bench::{
    cache_key, execute_cell, run_scenario, run_scenario_with, FigureResult, Instruments, RunOutput,
    RunSpec, Series,
};
use dophy_sim::obs::FlightRecorder;
use dophy_sim::{LinkDynamics, MacConfig, Placement, RadioModel, SimConfig, SimDuration, SimTime};
use std::sync::Arc;

fn spec(seed: u64) -> RunSpec {
    let sim = SimConfig {
        placement: Placement::Grid {
            side: 5,
            spacing: 15.0,
        },
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed,
    };
    let dophy = DophyConfig {
        traffic_period: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(30),
        ..DophyConfig::default()
    };
    RunSpec::new(sim, dophy, SimDuration::from_secs(600))
}

/// Folds a run's deterministic outputs into a figure, the way the
/// experiment reducers do. Wall-clock telemetry is deliberately excluded:
/// everything here must be byte-stable.
fn figure(out: &RunOutput) -> FigureResult {
    let mut fig = FigureResult::new(
        "sharding-invariance",
        "Sharded-engine figure determinism probe",
        "link index / metric index",
        "loss / count",
    );
    let sorted = |m: &std::collections::HashMap<(u32, u32), f64>| -> Vec<(f64, f64)> {
        let mut v: Vec<_> = m.iter().map(|(&(s, d), &l)| ((s, d), l)).collect();
        v.sort_by_key(|e| e.0);
        v.into_iter()
            .enumerate()
            .map(|(i, (_, l))| (i as f64, l))
            .collect()
    };
    fig.push_series(Series::new("truth", sorted(&out.truth)));
    fig.push_series(Series::new("dophy", sorted(&out.dophy)));
    fig.push_series(Series::new("naive", sorted(&out.naive)));
    fig.push_series(Series::new("em", sorted(&out.em)));
    fig.push_series(Series::new("minc", sorted(&out.minc)));
    fig.push_series(Series::new("sparse-l1", sorted(&out.sparse_l1)));
    fig.push_series(Series::new(
        "totals",
        vec![
            (0.0, out.overhead.packets as f64),
            (1.0, out.decode.ok as f64),
            (2.0, out.decode.quarantined() as f64),
            (3.0, out.delivery_ratio),
            (4.0, out.refreshes as f64),
            (5.0, out.dissemination_bytes as f64),
            (6.0, out.churn.changes_per_node_hour),
        ],
    ));
    fig.note(format!("checkpoints: {}", out.checkpoints.len()));
    fig
}

#[test]
fn figure_json_is_byte_identical_across_shard_counts() {
    // Same seed, shards=1 vs shards=N, through the real executor path
    // (pool + cache): the serialized figures must match byte for byte.
    let base = execute_cell(
        "shards=1",
        spec(11).with_shards(1),
        Instruments::default(),
        1,
    )
    .expect("sharded run succeeds");
    let json_base = serde_json::to_string(&figure(&base)).unwrap();
    for shards in [3, 6] {
        let out = execute_cell(
            "shards=n",
            spec(11).with_shards(shards),
            Instruments::default(),
            1,
        )
        .expect("sharded run succeeds");
        let json = serde_json::to_string(&figure(&out)).unwrap();
        assert_eq!(
            json_base, json,
            "figure JSON diverged between shards=1 and shards={shards}"
        );
    }
}

#[test]
fn engine_choice_is_part_of_the_cache_identity() {
    // Sharded and single-loop runs are different sample paths, so the
    // content-addressed run cache must never alias them. Results *are*
    // shard-count invariant, but the cache is keyed on the literal spec
    // hash, so distinct shard counts cache separately (conservative) and
    // only the exact same spec hits.
    let single = spec(7);
    let sharded = spec(7).with_shards(4);
    assert_ne!(cache_key(&single), cache_key(&sharded));
    assert_ne!(cache_key(&sharded), cache_key(&spec(7).with_shards(8)));
    assert_eq!(cache_key(&sharded), cache_key(&spec(7).with_shards(4)));
}

#[test]
fn instruments_do_not_perturb_a_sharded_run() {
    // Metrics sampling chunks run_until calls and the flight recorder
    // subscribes to every event; neither may change a sharded run, and
    // the metrics series must actually fill.
    let bare = run_scenario(&spec(13).with_shards(4));
    let inst = Instruments {
        metrics_every: Some(SimDuration::from_secs(120)),
        flight_recorder: Some(Arc::new(FlightRecorder::new(256))),
        ..Instruments::default()
    };
    let instrumented = run_scenario_with(&spec(13).with_shards(4), inst);
    assert_eq!(bare.decode, instrumented.decode);
    assert_eq!(bare.overhead.packets, instrumented.overhead.packets);
    assert_eq!(bare.truth, instrumented.truth);
    assert_eq!(bare.dophy, instrumented.dophy);
    assert!(!instrumented.metrics.is_empty(), "metrics series empty");
    assert!(instrumented
        .metrics
        .last()
        .unwrap()
        .counters
        .iter()
        .any(|(k, v)| k == "engine_events_processed" && *v > 0));
}

/// The inference layer's engine-blindness contract, in two halves.
///
/// 1. The serialized evidence-event stream reaching the backends is
///    byte-identical at every shard count (the sharded engine's existing
///    byte-identity guarantee extends through evidence derivation), and
/// 2. for *both* engines, replaying a run's captured stream into a fresh
///    [`Inference`] reproduces every backend's snapshot bit for bit — the
///    backends are pure functions of the evidence stream, so they cannot
///    observe which engine produced it.
///
/// Single-loop and sharded engines are deliberately *different sample
/// paths* (established when sharding landed: `RunSpec.shards` is part of
/// the cache identity), so cross-engine stream equality is not a thing
/// that can be asserted; engine-blindness of the backends is the
/// guarantee that matters, and (2) is exactly that.
#[test]
fn evidence_stream_is_shard_invariant_and_backends_are_engine_blind() {
    let run = |shards: Option<u16>| {
        let spec = spec(17);
        let (engine_shared, log_handle);
        let mut single_engine = None;
        let mut sharded_engine = None;
        if let Some(sh) = shards {
            let (engine, shared) =
                dophy::protocol::build_sharded_simulation(&spec.sim, &spec.dophy, sh);
            sharded_engine = Some(engine);
            engine_shared = shared;
        } else {
            let (engine, shared) = dophy::protocol::build_simulation(&spec.sim, &spec.dophy);
            single_engine = Some(engine);
            engine_shared = shared;
        }
        let (log, handle) = EvidenceLog::new();
        engine_shared.lock().infer.attach(Box::new(log));
        log_handle = handle;
        let dur = SimDuration::from_secs(420);
        if let Some(e) = sharded_engine.as_mut() {
            e.start();
            e.run_for(dur);
        }
        if let Some(e) = single_engine.as_mut() {
            e.start();
            e.run_for(dur);
        }
        (engine_shared, log_handle, spec.dophy)
    };

    // (1) Shard invariance of the stream itself.
    let (shared1, log1, dophy_cfg) = run(Some(1));
    let (_shared4, log4, _) = run(Some(4));
    let to_json = |log: &Arc<parking_lot::Mutex<Vec<dophy::infer::Evidence>>>| -> String {
        serde_json::to_string(&*log.lock()).expect("evidence serializes")
    };
    assert!(
        !log1.lock().is_empty(),
        "run produced no evidence — nothing was tested"
    );
    assert_eq!(
        to_json(&log1),
        to_json(&log4),
        "evidence stream diverged between shards=1 and shards=4"
    );

    // (2) Replay equality, sharded engine.
    let q = SnapshotQuery {
        now: SimTime::ZERO + SimDuration::from_secs(420),
        r: 7,
        min_samples: 1,
    };
    let replay_matches =
        |shared: &Arc<parking_lot::Mutex<dophy::protocol::SinkState>>,
         log: &Arc<parking_lot::Mutex<Vec<dophy::infer::Evidence>>>| {
            let mut fresh = Inference::new(dophy_cfg.tracking);
            for ev in log.lock().iter() {
                fresh.observe(ev);
            }
            let live = shared.lock();
            for kind in EstimatorKind::ALL {
                assert_eq!(
                    live.infer.backend(kind).snapshot(&q),
                    fresh.backend(kind).snapshot(&q),
                    "{kind} snapshot diverged under replay"
                );
            }
            assert_eq!(
                Estimator::snapshot(&live.infer.windowed, &q),
                Estimator::snapshot(&fresh.windowed, &q),
                "windowed snapshot diverged under replay"
            );
        };
    replay_matches(&shared1, &log1);

    // (2') Replay equality, single-loop engine — same property, other
    // engine, proving the backends cannot tell which engine ran.
    let (shared_single, log_single, _) = run(None);
    replay_matches(&shared_single, &log_single);
}

/// 10k-node sharded smoke: the scale target of the sharded engine. Run
/// explicitly with `cargo test -p dophy-bench --test sharding -- --ignored`
/// (CI covers the same scale through fig14-scale's quick suite).
#[test]
#[ignore = "multi-minute at 10k nodes; fig14-scale quick covers it in CI"]
fn ten_thousand_node_sharded_smoke() {
    let sim = SimConfig {
        placement: Placement::UniformDisk {
            n: 10_000,
            radius: 120.0 * (10_000.0f64 / 200.0).sqrt(),
        },
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed: 211,
    };
    let dophy = DophyConfig {
        traffic_period: SimDuration::from_secs(5),
        warmup: SimDuration::from_secs(60),
        ..DophyConfig::default()
    };
    let spec = RunSpec::new(sim, dophy, SimDuration::from_secs(150)).with_shards(32);
    let out = run_scenario(&spec);
    assert_eq!(out.node_count, 10_000);
    assert!(
        out.overhead.packets > 5_000,
        "packets {}",
        out.overhead.packets
    );
    // The ~30-hop routing tree needs several hundred simulated seconds of
    // beaconing to reach the rim, so end-to-end delivery is still low at
    // 150 s — the smoke only asserts traffic is flowing sink-ward.
    assert!(out.delivery_ratio > 0.01, "delivery {}", out.delivery_ratio);
    assert!(!out.truth.is_empty());
    assert!(!out.dophy.is_empty());
}
