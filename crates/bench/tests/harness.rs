//! End-to-end determinism guarantees of the plan/executor harness:
//!
//! * the figure JSON a suite produces is byte-identical at any worker
//!   count (the executor decides *when* cells run, never *what* they
//!   compute);
//! * a cache hit reproduces the cache miss's result exactly (it *is* the
//!   same output).

use dophy::protocol::DophyConfig;
use dophy_bench::report::{FigureResult, Series};
use dophy_bench::{execute_plans, Cell, Plan, RunSpec, SuiteOutcome};
use dophy_sim::{LinkDynamics, MacConfig, Placement, RadioModel, SimConfig, SimDuration};

/// Six-node line, five simulated minutes: big enough to exercise real
/// multi-hop estimation, small enough that the suite runs in seconds.
fn tiny_spec(seed: u64) -> RunSpec {
    let sim = SimConfig {
        placement: Placement::Line {
            n: 6,
            spacing: 18.0,
        },
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed,
    };
    let dophy = DophyConfig {
        traffic_period: SimDuration::from_secs(1),
        warmup: SimDuration::from_secs(10),
        ..DophyConfig::default()
    };
    RunSpec::new(sim, dophy, SimDuration::from_secs(300))
}

/// A sweep plan plus a single-run plan whose spec is byte-equal to one of
/// the sweep's cells — so every suite built from this exercises a
/// deliberate cross-experiment cache share.
fn make_plans() -> Vec<Plan> {
    let seeds = [11u64, 12, 13];
    let cells = seeds
        .iter()
        .map(|&s| Cell::run(format!("seed={s}"), tiny_spec(s)))
        .collect();
    let sweep = Plan::new("t-sweep", cells, move |outs| {
        let mut fig = FigureResult::new("t-sweep", "tiny seed sweep", "seed index", "value");
        fig.push_series(Series::new(
            "dophy-mae",
            outs.iter()
                .enumerate()
                .map(|(i, o)| (i as f64, o.score_scheme(&o.dophy).mae))
                .collect::<Vec<_>>(),
        ));
        fig.push_series(Series::new(
            "delivery-ratio",
            outs.iter()
                .enumerate()
                .map(|(i, o)| (i as f64, o.delivery_ratio))
                .collect::<Vec<_>>(),
        ));
        fig
    });
    let shared = Plan::single("t-shared", "seed=12", tiny_spec(12), |o| {
        let mut fig = FigureResult::new("t-shared", "shares the sweep's seed-12 run", "x", "y");
        fig.push_series(Series::new("delivery-ratio", vec![(0.0, o.delivery_ratio)]));
        fig.note(format!("packets {}", o.overhead.packets));
        fig
    });
    vec![sweep, shared]
}

fn figure_jsons(outcome: &SuiteOutcome) -> Vec<String> {
    outcome
        .experiments
        .iter()
        .map(|e| {
            let fig = e
                .result
                .as_ref()
                .unwrap_or_else(|err| panic!("{} failed: {err}", e.id));
            serde_json::to_string_pretty(fig).expect("figure serializes")
        })
        .collect()
}

#[test]
fn suite_json_is_byte_identical_across_worker_counts() {
    let serial = execute_plans(make_plans(), 1);
    let pooled = execute_plans(make_plans(), 4);

    assert_eq!(serial.report.jobs, 1);
    assert_eq!(pooled.report.jobs, 4);
    // The shared seed-12 spec must be served from the cache in both modes.
    assert!(serial.report.cache_hits >= 1, "expected a cache share");
    assert!(pooled.report.cache_hits >= 1, "expected a cache share");

    assert_eq!(
        figure_jsons(&serial),
        figure_jsons(&pooled),
        "pooled execution must not change a single byte of figure JSON"
    );
}

#[test]
fn cache_hit_reproduces_cache_miss_exactly() {
    // Two experiments, same spec: one executes (miss), one is served from
    // the cache (hit). Their figures must be byte-identical.
    let mk = |id: &'static str| {
        Plan::single(id, "cell", tiny_spec(42), |o| {
            let mut fig = FigureResult::new("t-cache", "cache equivalence", "metric", "value");
            fig.push_series(Series::new(
                "summary",
                vec![
                    (0.0, o.score_scheme(&o.dophy).mae),
                    (1.0, o.delivery_ratio),
                    (2.0, o.decode.success_ratio()),
                    (3.0, o.overhead.mean_stream_bytes()),
                ],
            ));
            fig
        })
    };
    let outcome = execute_plans(vec![mk("t-a"), mk("t-b")], 2);

    assert_eq!(outcome.report.cache_misses, 1);
    assert_eq!(outcome.report.cache_hits, 1);
    assert_eq!(outcome.report.unique_runs, 1);
    let jsons = figure_jsons(&outcome);
    assert_eq!(jsons[0], jsons[1], "hit and miss must agree byte-for-byte");

    let cached_cells: Vec<_> = outcome.report.cells.iter().filter(|c| c.cached).collect();
    assert_eq!(cached_cells.len(), 1, "exactly one cell was a cache hit");
    assert!(cached_cells[0].ok);
}
