//! Shared bounded worker pool + content-addressed run cache for
//! experiment [`Plan`]s.
//!
//! All cells of all selected experiments are flattened into one queue and
//! drained by a bounded pool (default `min(available cores, cells)`,
//! overridable with `--jobs N` / `DOPHY_JOBS`). Cacheable cells are
//! content-addressed by [`cache_key`] — a stable FNV-1a hash over the
//! [`RunSpec`] (every float in the config tree hashes its raw bits) — so
//! experiments that deliberately share a canonical scenario execute it
//! once and receive the same `Arc<RunOutput>`.
//!
//! **Determinism.** Each simulation cell owns its seed and runs
//! single-threaded; workers only decide *when* a cell runs, never *what*
//! it computes. Reduces fold cell outputs in declaration order on the
//! caller's thread. A cache hit hands out the very output the miss
//! produced. Net effect: the figure JSON a suite writes is byte-identical
//! at any worker count (`tests/harness.rs` enforces this).
//!
//! **Failure isolation.** Every cell (and every reduce) runs under
//! `catch_unwind`; a panic fails only the owning experiment, with the
//! failing cell's label in the error, while the rest of the suite
//! completes. The harness exits non-zero afterwards.
//!
//! The pool feeds the PR-1 observability layer: a
//! [`MetricsRegistry`] tracks pool-depth gauges, cache hit/miss
//! counters, and per-cell wall-time histograms, snapshotted after every
//! cell into the [`HarnessReport`] exported as `BENCH_harness.json`.

use crate::plan::{CellOutput, CellWork, Plan};
use crate::report::FigureResult;
use crate::scenario::{run_scenario, run_scenario_with, Instruments, RunOutput, RunSpec};
use dophy_sim::obs::{MetricsRegistry, MetricsSnapshot};
use dophy_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Cache keys
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a [`std::hash::Hasher`].
///
/// `DefaultHasher` randomizes its keys per process; cache keys must
/// instead be stable across runs so sharing decisions (and the telemetry
/// that records them) are reproducible. FNV-1a over the `Hash`-by-bits
/// impls of the config tree gives run-to-run stable keys.
pub struct StableHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for StableHasher {
    fn default() -> Self {
        Self(FNV_OFFSET)
    }
}

impl std::hash::Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Content address of a run: stable hash of the full spec. Two cells with
/// equal keys execute one simulation and share its [`RunOutput`].
#[must_use]
pub fn cache_key(spec: &RunSpec) -> u64 {
    let mut h = StableHasher::default();
    std::hash::Hash::hash(spec, &mut h);
    std::hash::Hasher::finish(&h)
}

// ---------------------------------------------------------------------------
// Worker-count resolution
// ---------------------------------------------------------------------------

/// Resolves the worker count: explicit `--jobs` flag, else the
/// `DOPHY_JOBS` environment variable, else the machine's available
/// parallelism; always at least 1 and never more than `cells`.
#[must_use]
pub fn resolve_jobs(flag: Option<usize>, cells: usize) -> usize {
    let requested = flag
        .or_else(|| {
            std::env::var("DOPHY_JOBS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    requested.max(1).min(cells.max(1))
}

// ---------------------------------------------------------------------------
// Harness report
// ---------------------------------------------------------------------------

/// Telemetry for one executed cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellRecord {
    /// Owning experiment id.
    pub experiment: String,
    /// Cell label within the experiment.
    pub label: String,
    /// Whether the output came from the run cache.
    pub cached: bool,
    /// Whether the cell succeeded.
    pub ok: bool,
    /// Seconds after suite start this cell began.
    pub started_s: f64,
    /// Wall-clock seconds the cell occupied a worker.
    pub wall_seconds: f64,
}

/// Telemetry for one experiment (its cells plus the reduce).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id.
    pub id: String,
    /// Number of cells the plan declared.
    pub cells: usize,
    /// Whether every cell and the reduce succeeded.
    pub ok: bool,
    /// First failure message (names the failing cell), when not ok.
    pub error: Option<String>,
    /// Wall-clock seconds from its first cell starting to its reduce
    /// finishing (cells of other experiments interleave in this span).
    pub wall_seconds: f64,
}

/// Suite-level execution telemetry, exported as `BENCH_harness.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HarnessReport {
    /// Worker count the pool ran with.
    pub jobs: usize,
    /// End-to-end suite wall-clock (cells + reduces), seconds.
    pub suite_wall_seconds: f64,
    /// Simulations actually executed for cacheable cells (= cache misses).
    pub unique_runs: u64,
    /// Cacheable cells served from the cache.
    pub cache_hits: u64,
    /// Cacheable cells that had to execute.
    pub cache_misses: u64,
    /// Largest number of simultaneously busy workers observed.
    pub max_pool_depth: usize,
    /// Per-experiment telemetry, in selection order.
    pub experiments: Vec<ExperimentRecord>,
    /// Per-cell telemetry, sorted by (experiment, label).
    pub cells: Vec<CellRecord>,
    /// Final state of the executor's metrics registry (pool-depth gauge,
    /// cache counters, cell wall-time histogram). Snapshot timestamps are
    /// wall-clock microseconds since suite start — the executor lives in
    /// wall time, not sim time.
    pub metrics: MetricsSnapshot,
}

/// One experiment's outcome: the figure, or why it failed.
pub struct ExperimentOutcome {
    /// Experiment id.
    pub id: String,
    /// The reduced figure, or the first cell/reduce failure.
    pub result: Result<FigureResult, String>,
}

/// Everything [`execute_plans`] returns.
pub struct SuiteOutcome {
    /// Per-experiment results, in the order the plans were given.
    pub experiments: Vec<ExperimentOutcome>,
    /// Execution telemetry.
    pub report: HarnessReport,
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

enum CacheEntry {
    /// Some worker is executing this spec; wait on the condvar.
    Pending,
    /// Finished; every equal-spec cell shares this output.
    Ready(Arc<RunOutput>),
    /// The owning execution panicked; equal-spec cells inherit the error.
    Failed(String),
}

struct Task {
    slot: usize,
    experiment: &'static str,
    label: String,
    work: CellWork,
}

struct Shared {
    queue: Mutex<VecDeque<Task>>,
    slots: Vec<Mutex<Option<Result<CellOutput, String>>>>,
    cache: Mutex<HashMap<u64, CacheEntry>>,
    cache_ready: Condvar,
    busy: AtomicUsize,
    max_depth: AtomicUsize,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    records: Mutex<Vec<CellRecord>>,
    metrics: Mutex<MetricsRegistry>,
    t0: Instant,
}

/// Locks ignoring poisoning: workers never panic while holding a lock
/// (cells execute unlocked, under `catch_unwind`), and even if one did,
/// the protected data stays valid for reporting.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f`, converting a panic into an `Err` naming the cell.
fn catch<T>(label: &str, f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        format!("cell '{label}' panicked: {msg}")
    })
}

fn cacheable(inst: &Instruments) -> bool {
    inst.observer.is_none()
        && inst.metrics_every.is_none()
        && !inst.progress
        && !inst.profile
        && inst.flight_recorder.is_none()
        && inst.evidence.is_none()
}

impl Shared {
    fn wall_now(&self) -> SimTime {
        // Executor metrics live in wall time; reuse the sim-time axis as
        // "microseconds since suite start" for snapshot ordering.
        SimTime::ZERO + SimDuration::from_micros(self.t0.elapsed().as_micros() as u64)
    }

    /// Executes (or fetches) one cell's work. Returns the output plus
    /// whether it came from the cache.
    fn execute_work(&self, label: &str, work: CellWork) -> (Result<CellOutput, String>, bool) {
        match work {
            CellWork::Custom(f) => (catch(label, f).map(CellOutput::Figure), false),
            CellWork::Run { spec, instruments } => {
                if !cacheable(&instruments) {
                    // Clone the recorder handle before the instruments move
                    // into the cell: if the run panics, the ring still holds
                    // the event tail for the postmortem dump.
                    let recorder = instruments.flight_recorder.clone();
                    let res = catch(label, move || run_scenario_with(&spec, instruments))
                        .map(|o| CellOutput::Run(Arc::new(o)));
                    if let (Err(e), Some(rec)) = (&res, recorder) {
                        rec.dump_postmortem(label, e);
                    }
                    return (res, false);
                }
                let key = cache_key(&spec);
                enum Claim {
                    Owner,
                    Hit(Result<Arc<RunOutput>, String>),
                }
                let claim = {
                    let mut cache = lock(&self.cache);
                    loop {
                        match cache.get(&key) {
                            None => {
                                cache.insert(key, CacheEntry::Pending);
                                break Claim::Owner;
                            }
                            Some(CacheEntry::Pending) => {
                                cache = self
                                    .cache_ready
                                    .wait(cache)
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                            }
                            Some(CacheEntry::Ready(out)) => break Claim::Hit(Ok(out.clone())),
                            Some(CacheEntry::Failed(e)) => break Claim::Hit(Err(e.clone())),
                        }
                    }
                };
                match claim {
                    Claim::Hit(res) => {
                        self.cache_hits.fetch_add(1, Ordering::SeqCst);
                        lock(&self.metrics).inc_counter("executor.cache_hits", &[], 1);
                        (res.map(CellOutput::Run), true)
                    }
                    Claim::Owner => {
                        self.cache_misses.fetch_add(1, Ordering::SeqCst);
                        lock(&self.metrics).inc_counter("executor.cache_misses", &[], 1);
                        let res = catch(label, move || run_scenario(&spec)).map(Arc::new);
                        let mut cache = lock(&self.cache);
                        cache.insert(
                            key,
                            match &res {
                                Ok(out) => CacheEntry::Ready(out.clone()),
                                Err(e) => CacheEntry::Failed(e.clone()),
                            },
                        );
                        self.cache_ready.notify_all();
                        drop(cache);
                        (res.map(CellOutput::Run), false)
                    }
                }
            }
        }
    }

    fn worker(&self) {
        loop {
            let task = lock(&self.queue).pop_front();
            let Some(task) = task else { return };
            let depth = self.busy.fetch_add(1, Ordering::SeqCst) + 1;
            self.max_depth.fetch_max(depth, Ordering::SeqCst);
            let started_s = self.t0.elapsed().as_secs_f64();
            {
                let mut m = lock(&self.metrics);
                m.set_gauge("executor.pool_depth", &[], depth as f64);
                m.inc_counter("executor.cells_started", &[], 1);
            }
            let (result, cached) = self.execute_work(&task.label, task.work);
            let wall_seconds = self.t0.elapsed().as_secs_f64() - started_s;
            let ok = result.is_ok();
            let depth_after = self.busy.fetch_sub(1, Ordering::SeqCst) - 1;
            {
                let mut m = lock(&self.metrics);
                m.set_gauge("executor.pool_depth", &[], depth_after as f64);
                m.inc_counter("executor.cells_finished", &[], 1);
                if !ok {
                    m.inc_counter("executor.cell_failures", &[], 1);
                }
                m.observe("executor.cell_wall_seconds", &[], wall_seconds);
                m.snapshot(self.wall_now());
            }
            *lock(&self.slots[task.slot]) = Some(result);
            lock(&self.records).push(CellRecord {
                experiment: task.experiment.to_string(),
                label: task.label,
                cached,
                ok,
                started_s,
                wall_seconds,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Executes every cell of every plan on one bounded pool of `jobs`
/// workers, then reduces each plan in order.
///
/// The whole suite always completes: a panicking cell fails only the
/// experiment that owns it. Results come back in plan order regardless of
/// scheduling, and are bit-identical at any `jobs` value.
#[must_use]
pub fn execute_plans(plans: Vec<Plan>, jobs: usize) -> SuiteOutcome {
    let mut tasks = VecDeque::new();
    let mut reduces = Vec::new();
    let mut slot = 0usize;
    for plan in plans {
        let first_slot = slot;
        for cell in plan.cells {
            tasks.push_back(Task {
                slot,
                experiment: plan.id,
                label: cell.label,
                work: cell.work,
            });
            slot += 1;
        }
        reduces.push((plan.id, first_slot..slot, plan.reduce));
    }

    let total_cells = slot;
    let workers = jobs.max(1).min(total_cells.max(1));
    let shared = Shared {
        queue: Mutex::new(tasks),
        slots: (0..total_cells).map(|_| Mutex::new(None)).collect(),
        cache: Mutex::new(HashMap::new()),
        cache_ready: Condvar::new(),
        busy: AtomicUsize::new(0),
        max_depth: AtomicUsize::new(0),
        cache_hits: AtomicU64::new(0),
        cache_misses: AtomicU64::new(0),
        records: Mutex::new(Vec::new()),
        metrics: Mutex::new(MetricsRegistry::new()),
        t0: Instant::now(),
    };

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| shared.worker());
        }
    });

    // Reduce in plan order on this thread: output order (and content) is
    // independent of how workers were scheduled.
    let mut experiments = Vec::new();
    let mut exp_records = Vec::new();
    for (id, range, reduce) in reduces {
        let cells = range.len();
        let reduce_start = shared.t0.elapsed().as_secs_f64();
        let mut outs = Vec::with_capacity(cells);
        let mut first_err = None;
        for i in range.clone() {
            match lock(&shared.slots[i]).take() {
                Some(Ok(out)) => outs.push(out),
                Some(Err(e)) => {
                    first_err = Some(e);
                    break;
                }
                None => {
                    first_err = Some(format!("cell {i} of '{id}' never executed"));
                    break;
                }
            }
        }
        let result = match first_err {
            Some(e) => Err(e),
            None => catch(&format!("{id}/reduce"), move || reduce(outs)),
        };
        let first_start = {
            let records = lock(&shared.records);
            records
                .iter()
                .filter(|r| r.experiment == id)
                .map(|r| r.started_s)
                .fold(f64::INFINITY, f64::min)
        };
        let wall_seconds = (shared.t0.elapsed().as_secs_f64()
            - if first_start.is_finite() {
                first_start
            } else {
                reduce_start
            })
        .max(0.0);
        exp_records.push(ExperimentRecord {
            id: id.to_string(),
            cells,
            ok: result.is_ok(),
            error: result.as_ref().err().cloned(),
            wall_seconds,
        });
        experiments.push(ExperimentOutcome {
            id: id.to_string(),
            result,
        });
    }

    let mut cells = lock(&shared.records).clone();
    cells.sort_by(|a, b| (&a.experiment, &a.label).cmp(&(&b.experiment, &b.label)));
    let metrics = lock(&shared.metrics).snapshot(shared.wall_now()).clone();
    let report = HarnessReport {
        jobs: workers,
        suite_wall_seconds: shared.t0.elapsed().as_secs_f64(),
        unique_runs: shared.cache_misses.load(Ordering::SeqCst),
        cache_hits: shared.cache_hits.load(Ordering::SeqCst),
        cache_misses: shared.cache_misses.load(Ordering::SeqCst),
        max_pool_depth: shared.max_depth.load(Ordering::SeqCst),
        experiments: exp_records,
        cells,
        metrics,
    };
    SuiteOutcome {
        experiments,
        report,
    }
}

/// Runs one spec on the executor path (pool + cache + panic isolation) —
/// how `dophy-run` executes its scenario, so both binaries exercise the
/// same machinery.
pub fn execute_cell(
    label: &str,
    spec: RunSpec,
    instruments: Instruments,
    jobs: usize,
) -> Result<Arc<RunOutput>, String> {
    let shared = Shared {
        queue: Mutex::new(VecDeque::from([Task {
            slot: 0,
            experiment: "dophy-run",
            label: label.to_string(),
            work: CellWork::Run {
                spec: Box::new(spec),
                instruments,
            },
        }])),
        slots: vec![Mutex::new(None)],
        cache: Mutex::new(HashMap::new()),
        cache_ready: Condvar::new(),
        busy: AtomicUsize::new(0),
        max_depth: AtomicUsize::new(0),
        cache_hits: AtomicU64::new(0),
        cache_misses: AtomicU64::new(0),
        records: Mutex::new(Vec::new()),
        metrics: Mutex::new(MetricsRegistry::new()),
        t0: Instant::now(),
    };
    // One cell saturates one worker; `jobs` is accepted so both binaries
    // share a CLI surface, but the pool never overshoots the queue.
    let _ = jobs;
    std::thread::scope(|s| {
        s.spawn(|| shared.worker());
    });
    let result = lock(&shared.slots[0]).take();
    match result {
        Some(Ok(CellOutput::Run(out))) => Ok(out),
        Some(Ok(CellOutput::Figure(_))) => unreachable!("run cell yields a run output"),
        Some(Err(e)) => Err(e),
        None => Err(format!("cell '{label}' never executed")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dophy::protocol::DophyConfig;
    use dophy_sim::SimConfig;

    fn spec(seed: u64) -> RunSpec {
        RunSpec::new(
            SimConfig::canonical(seed),
            DophyConfig::default(),
            SimDuration::from_secs(120),
        )
    }

    #[test]
    fn cache_key_is_stable_and_spec_sensitive() {
        let a = cache_key(&spec(7));
        assert_eq!(a, cache_key(&spec(7)), "same spec, same key");
        assert_ne!(a, cache_key(&spec(8)), "seed must change the key");
        let mut b = spec(7);
        b.min_est_samples += 1;
        assert_ne!(a, cache_key(&b), "runner knobs must change the key");
        let mut c = spec(7);
        c.faults = Some(dophy_sim::FaultConfig::corruption(0.01));
        assert_ne!(a, cache_key(&c), "fault config must change the key");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        use std::hash::Hasher as _;
        // Published FNV-1a 64 test vectors.
        let mut h = StableHasher::default();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = StableHasher::default();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn resolve_jobs_clamps_and_prefers_flag() {
        assert_eq!(resolve_jobs(Some(3), 10), 3);
        assert_eq!(resolve_jobs(Some(0), 10), 1, "zero clamps to one worker");
        assert_eq!(
            resolve_jobs(Some(64), 4),
            4,
            "never more workers than cells"
        );
        assert!(resolve_jobs(None, 1000) >= 1);
    }

    #[test]
    fn panic_in_one_plan_spares_the_others() {
        let bad = Plan::custom("bad", "boom", || panic!("deliberate test panic"));
        let good = Plan::custom("good", "calm", || {
            FigureResult::new("good-fig", "G", "x", "y")
        });
        let outcome = execute_plans(vec![bad, good], 2);
        assert_eq!(outcome.experiments.len(), 2);
        let bad_err = outcome.experiments[0].result.as_ref().unwrap_err();
        assert!(
            bad_err.contains("boom") && bad_err.contains("deliberate test panic"),
            "error must name the failing cell: {bad_err}"
        );
        assert_eq!(
            outcome.experiments[1].result.as_ref().unwrap().id,
            "good-fig"
        );
        let rep = &outcome.report;
        assert!(!rep.experiments[0].ok);
        assert!(rep.experiments[0].error.is_some());
        assert!(rep.experiments[1].ok);
        assert_eq!(
            rep.metrics
                .counters
                .iter()
                .find(|(k, _)| k == "executor.cell_failures")
                .map(|&(_, v)| v),
            Some(1)
        );
    }
}
