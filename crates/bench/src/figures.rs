//! The reproduced evaluation: one function per figure/table.
//!
//! Each experiment is declarative: it returns a [`Plan`] naming the
//! simulation cells it needs (labelled [`crate::RunSpec`]s) plus a pure
//! reduce closure that folds the finished runs into a [`FigureResult`]
//! whose series mirror what the paper's figure plots. The
//! [`crate::executor`] schedules all cells of all selected experiments on
//! one shared bounded pool and content-addresses identical specs, so the
//! canonical scenarios deliberately shared across experiments (see
//! [`canonical_dynamic_spec`]) run once. `quick` mode shrinks
//! durations/sizes ~4× for smoke runs; the reported *shapes* are the same.

use crate::plan::{Cell, Plan};
use crate::report::{FigureResult, Series};
use crate::scenario::{RunOutput, RunSpec};
use dophy::model_mgr::ModelUpdateConfig;
use dophy::protocol::DophyConfig;
use dophy_coding::aggregate::AggregationPolicy;
use dophy_coding::elias::gamma_len;
use dophy_coding::fixed::{width_for, FixedRecord};
use dophy_coding::golomb::RiceCoder;
use dophy_sim::{
    FaultConfig, LinkDynamics, MacConfig, Placement, RadioModel, SimConfig, SimDuration,
};
use std::collections::BTreeMap;

/// Link → estimated-loss map, as produced by each scheme.
pub type LossMap = std::collections::HashMap<(u32, u32), f64>;
/// A named experiment entry: id plus its plan builder.
pub type Experiment = (&'static str, fn(bool) -> Plan);
/// Named metric extractor over a finished run.
type SchemeSel<'a> = (&'a str, Box<dyn Fn(&RunOutput) -> f64>);

/// Canonical 200-node uniform-disk scenario (the paper-style default).
pub fn canonical_sim(seed: u64, quick: bool) -> SimConfig {
    SimConfig {
        placement: Placement::UniformDisk {
            n: if quick { 80 } else { 200 },
            radius: if quick { 80.0 } else { 120.0 },
        },
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed,
    }
}

/// Canonical Dophy configuration.
pub fn canonical_dophy() -> DophyConfig {
    DophyConfig {
        traffic_period: SimDuration::from_secs(5),
        warmup: SimDuration::from_secs(60),
        ..DophyConfig::default()
    }
}

/// Canonical dynamic-volatility scenario (σ = 0.02, seed 97), shared by
/// fig9, tab1, and tab3's first sweep point. They build byte-equal specs
/// on purpose: the executor's content-addressed cache runs the
/// simulation once and hands each of them the same output.
pub fn canonical_dynamic_spec(quick: bool) -> RunSpec {
    let sim = SimConfig {
        dynamics: LinkDynamics::Volatile {
            sigma_per_sqrt_s: 0.02,
        },
        ..canonical_sim(97, quick)
    };
    RunSpec::new(sim, canonical_dophy(), duration(quick))
}

fn duration(quick: bool) -> SimDuration {
    SimDuration::from_secs(if quick { 900 } else { 3600 })
}

// ---------------------------------------------------------------------------
// fig3 — per-packet encoding overhead vs path length
// ---------------------------------------------------------------------------

/// Encoding overhead (bytes per packet) as a function of path length:
/// Dophy's arithmetic stream vs explicit per-hop recording and
/// parameter-free entropy coders, all re-encoding the *same* delivered
/// packets' ground-truth hop records.
pub fn fig3_encoding_overhead(quick: bool) -> Plan {
    let spec = RunSpec::new(canonical_sim(31, quick), canonical_dophy(), duration(quick));
    Plan::single("fig3", "canonical-static", spec, |out| {
        let id_bits = width_for(out.node_count as u64);
        let attempt_bits = width_for(u64::from(out.max_attempts));
        let explicit = FixedRecord::for_network(out.node_count, out.max_attempts);
        let rice = RiceCoder::new(0); // optimal for low-loss attempt residuals

        // Group re-encoded sizes by path length.
        #[derive(Default, Clone)]
        struct Acc {
            n: u64,
            explicit_aligned: f64,
            fixed_packed: f64,
            rice_bits: f64,
            elias_bits: f64,
        }
        let mut by_hops: BTreeMap<usize, Acc> = BTreeMap::new();
        for hops in out.true_hops.values() {
            let k = hops.len();
            if k == 0 {
                continue;
            }
            let a = by_hops.entry(k).or_default();
            a.n += 1;
            a.explicit_aligned += (k * explicit.bytes_aligned()) as f64;
            a.fixed_packed += ((k as u64 * u64::from(id_bits + attempt_bits)).div_ceil(8)) as f64;
            let mut rice_bits = 0u64;
            let mut elias_bits = 0u64;
            for &(_, _, attempt) in hops {
                rice_bits += u64::from(id_bits) + rice.code_len(u64::from(attempt - 1));
                elias_bits += u64::from(id_bits) + gamma_len(u64::from(attempt));
            }
            a.rice_bits += rice_bits.div_ceil(8) as f64;
            a.elias_bits += elias_bits.div_ceil(8) as f64;
        }

        let mut fig = FigureResult::new(
            "fig3-encoding-overhead",
            "Per-packet encoding overhead vs path length",
            "path length (hops)",
            "mean bytes per packet",
        );
        let dophy_series: Vec<(f64, f64)> = out
            .overhead
            .stream_by_hops
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count() >= 10)
            .map(|(h, s)| (h as f64, s.mean()))
            .collect();
        fig.push_series(Series::new("dophy-stream", dophy_series.clone()));
        let grab = |sel: fn(&Acc) -> f64| -> Vec<(f64, f64)> {
            by_hops
                .iter()
                .filter(|(_, a)| a.n >= 10)
                .map(|(&h, a)| (h as f64, sel(a) / a.n as f64))
                .collect()
        };
        fig.push_series(Series::new("explicit-2B/hop", grab(|a| a.explicit_aligned)));
        fig.push_series(Series::new("fixed-bitpacked", grab(|a| a.fixed_packed)));
        fig.push_series(Series::new("golomb-rice", grab(|a| a.rice_bits)));
        fig.push_series(Series::new("elias-gamma", grab(|a| a.elias_bits)));

        // Headline factor at the deepest well-populated path length.
        if let Some(&(h, dophy_bytes)) = dophy_series.last() {
            if let Some(a) = by_hops.get(&(h as usize)) {
                let factor = (a.explicit_aligned / a.n as f64) / dophy_bytes.max(0.1);
                fig.note(format!(
                    "at {h} hops Dophy uses {dophy_bytes:.2} B vs explicit {:.2} B ({factor:.1}x smaller)",
                    a.explicit_aligned / a.n as f64
                ));
            }
        }
        fig.note(format!(
            "packets {} | decode success {:.4} | delivery {:.3}",
            out.overhead.packets,
            out.decode.success_ratio(),
            out.delivery_ratio
        ));
        fig
    })
}

// ---------------------------------------------------------------------------
// fig4 — Optimization 1: symbol aggregation
// ---------------------------------------------------------------------------

/// Effect of the aggregation cap `A` on overhead and accuracy. `A = R`
/// degenerates to no aggregation.
pub fn fig4_aggregation(quick: bool) -> Plan {
    let caps: Vec<u8> = vec![1, 2, 3, 4, 5, 7];
    let cells = caps
        .iter()
        .map(|&cap| {
            let dophy = DophyConfig {
                aggregation: AggregationPolicy::Cap { cap },
                ..canonical_dophy()
            };
            Cell::run(
                format!("cap={cap}"),
                RunSpec::new(canonical_sim(47, quick), dophy, duration(quick)),
            )
        })
        .collect();

    Plan::new("fig4", cells, move |outs| {
        let mut fig = FigureResult::new(
            "fig4-aggregation",
            "Optimization 1: aggregation cap vs overhead and accuracy",
            "aggregation cap A (symbols)",
            "bytes per packet / loss-ratio MAE",
        );
        let mut overhead = Vec::new();
        let mut mae = Vec::new();
        let mut alphabet = Vec::new();
        for (&cap, out) in caps.iter().zip(&outs) {
            overhead.push((f64::from(cap), out.overhead.mean_stream_bytes()));
            mae.push((f64::from(cap), out.score_scheme(&out.dophy).mae));
            alphabet.push((f64::from(cap), f64::from(cap)));
        }
        fig.push_series(Series::new("stream-bytes/pkt", overhead));
        fig.push_series(Series::new("dophy-mae", mae));
        fig.push_series(Series::new("alphabet-size", alphabet));
        fig.note(
            "A=7 equals no aggregation (identity); A=1 destroys attempt information".to_string(),
        );
        fig
    })
}

// ---------------------------------------------------------------------------
// fig5 — Optimization 2: model-update period
// ---------------------------------------------------------------------------

/// Total Dophy overhead (per-packet measurement bytes + amortised
/// dissemination bytes) as a function of the model-update period.
pub fn fig5_model_update(quick: bool) -> Plan {
    // u64::MAX observations disables refreshes entirely ("never").
    let periods: Vec<(f64, u64, u64)> = vec![
        (30.0, 30, 50),
        (60.0, 60, 50),
        (120.0, 120, 50),
        (300.0, 300, 50),
        (900.0, 900, 50),
        (1e9, 1_000_000, u64::MAX),
    ];
    let cells = periods
        .iter()
        .map(|&(_, secs, min_obs)| {
            let dophy = DophyConfig {
                model_update: ModelUpdateConfig {
                    update_period: SimDuration::from_secs(secs),
                    min_observations: min_obs,
                    ..ModelUpdateConfig::default()
                },
                // Dense traffic: the dissemination cost of an update amortises
                // over the packets coded under it, so the update-period
                // trade-off is traffic-rate dependent; 1 s reporting is the
                // regime the paper's data-collection workloads occupy.
                traffic_period: SimDuration::from_secs(1),
                // Drifting links make stale models costly — the regime where
                // Optimization 2 pays.
                ..canonical_dophy()
            };
            let sim = SimConfig {
                dynamics: LinkDynamics::Drift {
                    amp: 0.25,
                    period_s: 600.0,
                },
                ..canonical_sim(53, quick)
            };
            Cell::run(
                format!("period={secs}s"),
                RunSpec::new(sim, dophy, duration(quick)),
            )
        })
        .collect();

    Plan::new("fig5", cells, move |outs| {
        let mut fig = FigureResult::new(
            "fig5-model-update",
            "Optimization 2: model-update period vs total overhead",
            "update period (s; 1e9 = never)",
            "bytes per delivered packet",
        );
        let mut per_packet = Vec::new();
        let mut dissem = Vec::new();
        let mut total = Vec::new();
        for (&(x, _, _), out) in periods.iter().zip(&outs) {
            let pkts = out.overhead.packets.max(1) as f64;
            let stream = out.overhead.mean_stream_bytes();
            let dis = out.dissemination_bytes as f64 / pkts;
            per_packet.push((x, stream));
            dissem.push((x, dis));
            total.push((x, stream + dis));
        }
        fig.push_series(Series::new("stream-bytes/pkt", per_packet));
        fig.push_series(Series::new("dissemination/pkt", dissem));
        fig.push_series(Series::new("total/pkt", total));
        fig.note(
            "U-shape: frequent updates pay dissemination, stale models pay per-symbol \
             redundancy; the optimum shifts with traffic rate (dissemination amortises \
             over packets coded per epoch)"
                .to_string(),
        );
        fig
    })
}

// ---------------------------------------------------------------------------
// fig6 — accuracy vs delivered traffic
// ---------------------------------------------------------------------------

/// Estimation error as packets accumulate: Dophy (MLE + naive) vs
/// traditional tomography (EM + log-LS), under dynamic routing.
pub fn fig6_accuracy_vs_traffic(quick: bool) -> Plan {
    let sim = SimConfig {
        dynamics: LinkDynamics::Volatile {
            sigma_per_sqrt_s: 0.02,
        },
        ..canonical_sim(61, quick)
    };
    let spec = RunSpec {
        checkpoints: true,
        ..RunSpec::new(sim, canonical_dophy(), duration(quick))
    };
    Plan::single("fig6", "dynamic-checkpointed", spec, |out| {
        let mut fig = FigureResult::new(
            "fig6-accuracy-vs-traffic",
            "Estimation error vs delivered packets (dynamic routing)",
            "delivered packets",
            "loss-ratio MAE",
        );
        let grab = |sel: fn(&crate::scenario::Checkpoint) -> f64| -> Vec<(f64, f64)> {
            out.checkpoints
                .iter()
                .filter(|c| c.delivered > 0)
                .map(|c| (c.delivered as f64, sel(c)))
                .collect()
        };
        fig.push_series(Series::new("dophy-mle", grab(|c| c.dophy_mae)));
        fig.push_series(Series::new("dophy-naive", grab(|c| c.naive_mae)));
        fig.push_series(Series::new("traditional-em", grab(|c| c.em_mae)));
        fig.push_series(Series::new("traditional-logls", grab(|c| c.ls_mae)));
        fig.push_series(Series::new("dophy-coverage", grab(|c| c.dophy_coverage)));
        fig.note(format!(
            "churn: {:.2} parent changes/node/hour",
            out.churn.changes_per_node_hour
        ));
        fig
    })
}

// ---------------------------------------------------------------------------
// fig7 — accuracy vs routing dynamics
// ---------------------------------------------------------------------------

/// Estimation error as link volatility (and hence parent churn) grows —
/// the paper's headline comparison.
pub fn fig7_accuracy_vs_dynamics(quick: bool) -> Plan {
    let sigmas: Vec<f64> = vec![0.0, 0.01, 0.02, 0.04, 0.08];
    let cells = sigmas
        .iter()
        .map(|&sigma| {
            let sim = SimConfig {
                dynamics: if sigma == 0.0 {
                    LinkDynamics::Static
                } else {
                    LinkDynamics::Volatile {
                        sigma_per_sqrt_s: sigma,
                    }
                },
                ..canonical_sim(71, quick)
            };
            Cell::run(
                format!("sigma={sigma}"),
                RunSpec::new(sim, canonical_dophy(), duration(quick)),
            )
        })
        .collect();

    Plan::new("fig7", cells, move |outs| {
        let mut fig = FigureResult::new(
            "fig7-accuracy-vs-dynamics",
            "Estimation error vs link volatility (routing dynamics)",
            "PRR volatility sigma (per sqrt-s)",
            "loss-ratio MAE / churn rate",
        );
        let collect = |sel: &dyn Fn(&RunOutput) -> f64| -> Vec<(f64, f64)> {
            sigmas
                .iter()
                .zip(&outs)
                .map(|(&s, o)| (s, sel(o.as_ref())))
                .collect()
        };
        fig.push_series(Series::new(
            "dophy-mle",
            collect(&|o| o.score_scheme(&o.dophy).mae),
        ));
        fig.push_series(Series::new(
            "traditional-em",
            collect(&|o| o.score_scheme(&o.em).mae),
        ));
        fig.push_series(Series::new(
            "traditional-logls",
            collect(&|o| o.score_scheme(&o.ls).mae),
        ));
        fig.push_series(Series::new(
            "churn/node/hour",
            collect(&|o| o.churn.changes_per_node_hour),
        ));
        fig.note(
            "Dophy's error should stay nearly flat while traditional tomography degrades"
                .to_string(),
        );
        fig
    })
}

// ---------------------------------------------------------------------------
// fig8 — scalability with network size
// ---------------------------------------------------------------------------

/// Accuracy and overhead across network sizes (constant node density).
pub fn fig8_accuracy_vs_size(quick: bool) -> Plan {
    let sizes: Vec<u32> = if quick {
        vec![50, 100, 150]
    } else {
        vec![50, 100, 200, 300, 400]
    };
    let cells = sizes
        .iter()
        .map(|&n| {
            let radius = 120.0 * (f64::from(n) / 200.0).sqrt();
            let sim = SimConfig {
                placement: Placement::UniformDisk { n, radius },
                ..canonical_sim(83, quick)
            };
            Cell::run(
                format!("n={n}"),
                RunSpec::new(sim, canonical_dophy(), duration(quick)),
            )
        })
        .collect();

    Plan::new("fig8", cells, move |outs| {
        let mut fig = FigureResult::new(
            "fig8-accuracy-vs-size",
            "Accuracy and overhead vs network size (constant density)",
            "nodes",
            "MAE / bytes-per-packet / ratio",
        );
        let collect = |sel: &dyn Fn(&RunOutput) -> f64| -> Vec<(f64, f64)> {
            sizes
                .iter()
                .zip(&outs)
                .map(|(&n, o)| (f64::from(n), sel(o.as_ref())))
                .collect()
        };
        fig.push_series(Series::new(
            "dophy-mle",
            collect(&|o| o.score_scheme(&o.dophy).mae),
        ));
        fig.push_series(Series::new(
            "traditional-em",
            collect(&|o| o.score_scheme(&o.em).mae),
        ));
        fig.push_series(Series::new(
            "stream-bytes/pkt",
            collect(&|o| o.overhead.mean_stream_bytes()),
        ));
        fig.push_series(Series::new(
            "delivery-ratio",
            collect(&|o| o.delivery_ratio),
        ));
        fig.push_series(Series::new(
            "decode-success",
            collect(&|o| o.decode.success_ratio()),
        ));
        fig
    })
}

// ---------------------------------------------------------------------------
// fig9 — per-link error CDF
// ---------------------------------------------------------------------------

/// Per-link absolute-error distribution, reported at fixed quantiles.
/// Shares [`canonical_dynamic_spec`] with tab1 (one simulation, cached).
pub fn fig9_error_cdf(quick: bool) -> Plan {
    Plan::single(
        "fig9",
        "canonical-dynamic",
        canonical_dynamic_spec(quick),
        |out| {
            let mut fig = FigureResult::new(
                "fig9-error-cdf",
                "Per-link absolute error at fixed CDF quantiles",
                "CDF quantile (%)",
                "absolute loss-ratio error",
            );
            let quantiles = [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0];
            let at_quantiles = |est: &LossMap| -> Vec<(f64, f64)> {
                let rep = out.score_scheme(est);
                if rep.abs_errors.is_empty() {
                    return Vec::new();
                }
                quantiles
                    .iter()
                    .map(|&q| {
                        let idx = ((rep.abs_errors.len() - 1) as f64 * q / 100.0).round() as usize;
                        (q, rep.abs_errors[idx])
                    })
                    .collect()
            };
            fig.push_series(Series::new("dophy-mle", at_quantiles(&out.dophy)));
            fig.push_series(Series::new("dophy-naive", at_quantiles(&out.naive)));
            fig.push_series(Series::new("traditional-em", at_quantiles(&out.em)));
            fig.push_series(Series::new("traditional-logls", at_quantiles(&out.ls)));
            fig.note(format!(
                "links scored: {}",
                out.score_scheme(&out.dophy).scored_links
            ));
            fig
        },
    )
}

// ---------------------------------------------------------------------------
// tab1 — canonical-scenario summary
// ---------------------------------------------------------------------------

/// Summary table of all schemes on the canonical scenario. The metric
/// index on the x axis maps to: 1 MAE, 2 RMSE, 3 mean relative error,
/// 4 coverage, 5 p90 abs error. Shares [`canonical_dynamic_spec`] with
/// fig9 (one simulation, cached).
pub fn tab1_summary(quick: bool) -> Plan {
    Plan::single(
        "tab1",
        "canonical-dynamic",
        canonical_dynamic_spec(quick),
        |out| {
            let mut fig = FigureResult::new(
                "tab1-summary",
                "Scheme summary on the canonical scenario",
                "metric (1 MAE, 2 RMSE, 3 relerr, 4 coverage, 5 p90)",
                "value",
            );
            let schemes: Vec<(&str, &LossMap)> = vec![
                ("dophy-mle", &out.dophy),
                ("dophy-naive", &out.naive),
                ("traditional-em", &out.em),
                ("traditional-logls", &out.ls),
            ];
            for (name, est) in schemes {
                let rep = out.score_scheme(est);
                fig.push_series(Series::new(
                    name,
                    vec![
                        (1.0, rep.mae),
                        (2.0, rep.rmse),
                        (3.0, rep.mean_relative_error),
                        (4.0, rep.coverage()),
                        (5.0, rep.p90_abs_error),
                    ],
                ));
            }
            fig.note(format!(
                "delivery ratio {:.4} | decode success {:.4} | stream {:.2} B/pkt | measurement {:.2} B/pkt | dissemination {} B over {} refreshes",
                out.delivery_ratio,
                out.decode.success_ratio(),
                out.overhead.mean_stream_bytes(),
                out.overhead.mean_measurement_bytes(),
                out.dissemination_bytes,
                out.refreshes,
            ));
            fig.note(format!(
                "churn {:.2} changes/node/hour | truth links {} | delivered packets {}",
                out.churn.changes_per_node_hour,
                out.truth.len(),
                out.overhead.packets
            ));
            fig
        },
    )
}

// ---------------------------------------------------------------------------
// tab2 — decode robustness under epoch staleness
// ---------------------------------------------------------------------------

/// Decode success under aggressive model updating, as a function of the
/// dissemination propagation delay and the sink's epoch-history window.
pub fn tab2_decode(quick: bool) -> Plan {
    let delays: Vec<u64> = vec![1, 10, 30, 60];
    let histories: Vec<usize> = vec![1, 2, 8];
    let points: Vec<(u64, usize)> = delays
        .iter()
        .flat_map(|&d| histories.iter().map(move |&h| (d, h)))
        .collect();
    let cells = points
        .iter()
        .map(|&(delay, history)| {
            let dophy = DophyConfig {
                model_update: ModelUpdateConfig {
                    update_period: SimDuration::from_secs(45),
                    min_observations: 20,
                    history_len: history,
                    max_propagation_delay: SimDuration::from_secs(delay),
                    ..ModelUpdateConfig::default()
                },
                traffic_period: SimDuration::from_secs(5),
                ..canonical_dophy()
            };
            Cell::run(
                format!("delay={delay}s,history={history}"),
                RunSpec::new(canonical_sim(113, quick), dophy, duration(quick)),
            )
        })
        .collect();

    Plan::new("tab2", cells, move |outs| {
        let mut fig = FigureResult::new(
            "tab2-decode",
            "Decode success vs dissemination delay and epoch-history window",
            "max propagation delay (s)",
            "decode success ratio",
        );
        for (hi, &h) in histories.iter().enumerate() {
            let pts: Vec<(f64, f64)> = delays
                .iter()
                .enumerate()
                .map(|(di, &d)| {
                    let out = &outs[di * histories.len() + hi];
                    (d as f64, out.decode.success_ratio())
                })
                .collect();
            fig.push_series(Series::new(format!("history={h}"), pts));
        }
        let worst = outs
            .iter()
            .map(|o| o.decode)
            .min_by(|a, b| {
                a.success_ratio()
                    .partial_cmp(&b.success_ratio())
                    .expect("finite")
            })
            .expect("non-empty sweep");
        fig.note(format!("worst cell decode stats: {worst:?}"));
        fig
    })
}

// ---------------------------------------------------------------------------
// ablations
// ---------------------------------------------------------------------------

/// Truncation-corrected MLE vs naive moment estimator across true loss
/// levels, measured end-to-end on a two-node network.
pub fn ablation_truncation(quick: bool) -> Plan {
    let losses: Vec<f64> = vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
    let cells = losses
        .iter()
        .map(|&loss| {
            // Plant the target loss exactly: zero shadowing, and space the two
            // nodes where the logistic PRR curve equals 1 - loss.
            let radio = RadioModel {
                shadowing_sigma: 0.0,
                min_prr: 0.01,
                ..RadioModel::default()
            };
            let target = 1.0 - loss;
            let dist = radio.d50 + radio.transition_width * ((1.0 - target) / target).ln();
            let sim = SimConfig {
                placement: Placement::Line {
                    n: 2,
                    spacing: dist,
                },
                radio,
                mac: MacConfig::default(),
                dynamics: LinkDynamics::Static,
                seed: 131 + (loss * 100.0) as u64,
            };
            let dophy = DophyConfig {
                traffic_period: SimDuration::from_secs(1),
                warmup: SimDuration::from_secs(10),
                aggregation: AggregationPolicy::Identity,
                ..canonical_dophy()
            };
            Cell::run(
                format!("loss={loss}"),
                RunSpec {
                    min_truth_tx: 100,
                    ..RunSpec::new(sim, dophy, duration(quick))
                },
            )
        })
        .collect();

    Plan::new("ablation-truncation", cells, move |outs| {
        let mut fig = FigureResult::new(
            "ablation-truncation",
            "Truncation-corrected MLE vs naive estimator (signed bias)",
            "true per-transmission loss",
            "estimated - true loss",
        );
        let mut mle_bias = Vec::new();
        let mut naive_bias = Vec::new();
        for (&loss, out) in losses.iter().zip(&outs) {
            // One link of interest: 1 → 0.
            let t = out.truth.get(&(1, 0)).copied();
            let d = out.dophy.get(&(1, 0)).copied();
            let nv = out.naive.get(&(1, 0)).copied();
            if let (Some(t), Some(d), Some(nv)) = (t, d, nv) {
                mle_bias.push((loss, d - t));
                naive_bias.push((loss, nv - t));
            }
        }
        fig.push_series(Series::new("mle-bias", mle_bias));
        fig.push_series(Series::new("naive-bias", naive_bias));
        fig.note(
            "naive bias grows negative (optimistic) with loss; MLE stays near zero".to_string(),
        );
        fig
    })
}

/// Cost-aware (KL-gated) model refresh vs fixed-period refresh: with an
/// aggressive update period, the gate should skip most floods once the
/// model has converged, at equal per-packet stream cost.
pub fn ablation_klgate(quick: bool) -> Plan {
    // On a statistically stationary network the learned distribution stops
    // moving after the first couple of refreshes; measured pre-refresh KL
    // settles around 0.05–0.15 bits (residual estimator noise), so gates
    // above that should suppress almost all later floods.
    let gates: Vec<f64> = vec![0.0, 0.1, 0.3, 1.0];
    let cells = gates
        .iter()
        .map(|&gate| {
            let dophy = DophyConfig {
                model_update: ModelUpdateConfig {
                    update_period: SimDuration::from_secs(60),
                    min_observations: 50,
                    min_kl_bits: gate,
                    ..ModelUpdateConfig::default()
                },
                traffic_period: SimDuration::from_secs(2),
                ..canonical_dophy()
            };
            Cell::run(
                format!("gate={gate}"),
                RunSpec::new(canonical_sim(173, quick), dophy, duration(quick)),
            )
        })
        .collect();

    Plan::new("ablation-klgate", cells, move |outs| {
        let mut fig = FigureResult::new(
            "ablation-klgate",
            "Cost-aware refresh: KL gate vs fixed-period dissemination",
            "KL gate (bits; 0 = always refresh)",
            "refreshes / bytes-per-packet",
        );
        let collect = |sel: &dyn Fn(&RunOutput) -> f64| -> Vec<(f64, f64)> {
            gates
                .iter()
                .zip(&outs)
                .map(|(&g, o)| (g, sel(o.as_ref())))
                .collect()
        };
        fig.push_series(Series::new("refreshes", collect(&|o| o.refreshes as f64)));
        fig.push_series(Series::new(
            "stream-bytes/pkt",
            collect(&|o| o.overhead.mean_stream_bytes()),
        ));
        fig.push_series(Series::new(
            "total-bytes/pkt",
            collect(&|o| {
                o.overhead.mean_stream_bytes()
                    + o.dissemination_bytes as f64 / o.overhead.packets.max(1) as f64
            }),
        ));
        fig.note(
            "the gate should cut refresh count sharply with little stream-size penalty".to_string(),
        );
        fig
    })
}

/// Bayesian shrinkage vs MLE vs naive across observation budgets: with
/// few packets the informed Beta prior regularises noisy per-link
/// estimates; with many packets all estimators converge.
pub fn ablation_prior(quick: bool) -> Plan {
    let durations_s: Vec<u64> = vec![180, 420, 900, 1800, 3600];
    let cells = durations_s
        .iter()
        .map(|&secs| {
            Cell::run(
                format!("duration={secs}s"),
                RunSpec {
                    // Low threshold so small-sample links are actually reported —
                    // the regime where the estimators differ.
                    min_est_samples: 3,
                    ..RunSpec::new(
                        canonical_sim(197, quick),
                        canonical_dophy(),
                        SimDuration::from_secs(secs),
                    )
                },
            )
        })
        .collect();

    Plan::new("ablation-prior", cells, move |outs| {
        let mut fig = FigureResult::new(
            "ablation-prior",
            "Bayesian shrinkage vs MLE vs naive across observation budgets",
            "run duration (s)",
            "loss-ratio MAE",
        );
        let collect = |sel: &dyn Fn(&RunOutput) -> f64| -> Vec<(f64, f64)> {
            durations_s
                .iter()
                .zip(&outs)
                .map(|(&d, o)| (d as f64, sel(o.as_ref())))
                .collect()
        };
        fig.push_series(Series::new(
            "mle",
            collect(&|o| o.score_scheme(&o.dophy).mae),
        ));
        fig.push_series(Series::new(
            "naive",
            collect(&|o| o.score_scheme(&o.naive).mae),
        ));
        fig.push_series(Series::new(
            "bayes",
            collect(&|o| o.score_scheme(&o.bayes).mae),
        ));
        fig.note(
            "measured outcome: the exact (censoring/truncation-aware) MLE matches or beats \
             conjugate shrinkage at every budget — the Beta prior's O(1) updates trade away \
             the exact likelihood, and the prior biases the lossy tail; Bayes remains useful \
             for its closed-form credible intervals, not its point estimates"
                .to_string(),
        );
        fig
    })
}

/// Estimator robustness under bursty (Gilbert–Elliott) losses that violate
/// the i.i.d. assumption, across burst time-scales.
pub fn ablation_burst(quick: bool) -> Plan {
    let cycles: Vec<f64> = vec![0.0, 5.0, 20.0, 60.0, 180.0];
    let cells = cycles
        .iter()
        .map(|&cycle| {
            let sim = SimConfig {
                dynamics: if cycle == 0.0 {
                    LinkDynamics::Static
                } else {
                    LinkDynamics::Bursty {
                        lift: 0.1,
                        bad_factor: 0.4,
                        cycle_s: cycle,
                    }
                },
                ..canonical_sim(139, quick)
            };
            Cell::run(
                format!("cycle={cycle}s"),
                RunSpec::new(sim, canonical_dophy(), duration(quick)),
            )
        })
        .collect();

    Plan::new("ablation-burst", cells, move |outs| {
        let mut fig = FigureResult::new(
            "ablation-burstiness",
            "Accuracy under bursty (Gilbert-Elliott) losses",
            "burst cycle (s; 0 = i.i.d.)",
            "loss-ratio MAE",
        );
        let collect = |sel: &dyn Fn(&RunOutput) -> f64| -> Vec<(f64, f64)> {
            cycles
                .iter()
                .zip(&outs)
                .map(|(&c, o)| (c, sel(o.as_ref())))
                .collect()
        };
        fig.push_series(Series::new(
            "dophy-mle",
            collect(&|o| o.score_scheme(&o.dophy).mae),
        ));
        fig.push_series(Series::new(
            "traditional-em",
            collect(&|o| o.score_scheme(&o.em).mae),
        ));
        fig.push_series(Series::new(
            "delivery-ratio",
            collect(&|o| o.delivery_ratio),
        ));
        fig.note(
            "long bursts correlate consecutive attempts; the geometric model degrades gracefully"
                .to_string(),
        );
        fig
    })
}

// ---------------------------------------------------------------------------
// fig10 — tracking a drifting link (windowed vs cumulative estimation)
// ---------------------------------------------------------------------------

/// Time-resolved estimation: Dophy's windowed estimator follows a
/// sinusoidally drifting link while the cumulative estimator converges on
/// the average — the reason "dynamic" tomography needs windowing.
///
/// Drives the engine directly mid-run, so it is a single custom cell
/// (pooled and panic-isolated, but not cacheable).
pub fn fig10_tracking(quick: bool) -> Plan {
    Plan::custom("fig10-tracking", "drift-tracking", move || {
        use dophy::protocol::build_simulation;
        use dophy::tracking::WindowConfig;

        let period_s = 1200.0;
        let sim = SimConfig {
            dynamics: LinkDynamics::Drift { amp: 0.3, period_s },
            ..canonical_sim(151, quick)
        };
        let dophy_cfg = DophyConfig {
            traffic_period: SimDuration::from_secs(2),
            tracking: WindowConfig {
                window: SimDuration::from_secs(120),
                merge_windows: 3,
            },
            ..canonical_dophy()
        };
        let (mut engine, shared) = build_simulation(&sim, &dophy_cfg);
        engine.start();

        // Warm up, then pick the busiest estimated link.
        engine.run_for(SimDuration::from_secs(300));
        let (src, dst) = {
            let s = shared.lock();
            s.infer
                .in_band
                .estimates(sim.mac.max_attempts, 1)
                .into_iter()
                .max_by_key(|(_, e)| e.n_samples)
                .map(|(k, _)| k)
                .expect("some link observed after warmup")
        };
        let link_id = engine
            .topology()
            .link_id(dophy_sim::NodeId(src), dophy_sim::NodeId(dst))
            .expect("estimated link exists");

        let total = duration(quick) * 2;
        let mut truth_pts = Vec::new();
        let mut windowed_pts = Vec::new();
        let mut cumulative_pts = Vec::new();
        let step = SimDuration::from_secs(120);
        let mut elapsed = SimDuration::from_secs(300);
        while elapsed < total {
            engine.run_for(step);
            elapsed = elapsed + step;
            let x = elapsed.as_secs_f64();
            let true_loss = 1.0 - engine.true_prr_now(link_id);
            truth_pts.push((x, true_loss));
            let s = shared.lock();
            if let Some(e) = s
                .infer
                .windowed
                .estimate(engine.now(), src, dst, sim.mac.max_attempts)
            {
                windowed_pts.push((x, e.loss));
            }
            if let Some(le) = s.infer.in_band.link(src, dst) {
                if let Some(e) = le.mle(sim.mac.max_attempts) {
                    cumulative_pts.push((x, e.loss));
                }
            }
        }

        let mut fig = FigureResult::new(
            "fig10-tracking",
            "Tracking a drifting link: windowed vs cumulative estimation",
            "time (s)",
            "loss ratio",
        );
        // Tracking error summary before moving the series in.
        let err = |pts: &[(f64, f64)]| -> f64 {
            let mut s = 0.0;
            let mut n = 0.0;
            for &(x, y) in pts {
                if let Some(&(_, t)) = truth_pts.iter().find(|&&(tx, _)| (tx - x).abs() < 1e-9) {
                    s += (y - t).abs();
                    n += 1.0;
                }
            }
            if n > 0.0 {
                s / n
            } else {
                f64::NAN
            }
        };
        fig.note(format!(
            "link {src}->{dst}: windowed tracking MAE {:.4}, cumulative MAE {:.4}",
            err(&windowed_pts),
            err(&cumulative_pts)
        ));
        fig.push_series(Series::new("true-loss", truth_pts));
        fig.push_series(Series::new("windowed-estimate", windowed_pts));
        fig.push_series(Series::new("cumulative-estimate", cumulative_pts));
        fig
    })
}

// ---------------------------------------------------------------------------
// fig11 — topology sensitivity
// ---------------------------------------------------------------------------

/// Accuracy and overhead across deployment shapes. X-axis index: 1 uniform
/// disk, 2 grid, 3 line, 4 clustered.
pub fn fig11_topology(quick: bool) -> Plan {
    let placements: Vec<(f64, &'static str, Placement)> = vec![
        (
            1.0,
            "disk",
            Placement::UniformDisk {
                n: if quick { 80 } else { 150 },
                radius: if quick { 80.0 } else { 105.0 },
            },
        ),
        (
            2.0,
            "grid",
            Placement::Grid {
                side: if quick { 9 } else { 12 },
                spacing: 14.0,
            },
        ),
        (
            3.0,
            "line",
            Placement::Line {
                n: if quick { 20 } else { 30 },
                spacing: 22.0,
            },
        ),
        (
            4.0,
            "clustered",
            Placement::Clustered {
                clusters: if quick { 8 } else { 15 },
                per_cluster: 10,
                area_radius: if quick { 85.0 } else { 110.0 },
                cluster_radius: 12.0,
            },
        ),
    ];
    let cells = placements
        .iter()
        .map(|&(_, name, placement)| {
            let sim = SimConfig {
                placement,
                ..canonical_sim(163, quick)
            };
            Cell::run(name, RunSpec::new(sim, canonical_dophy(), duration(quick)))
        })
        .collect();

    Plan::new("fig11-topology", cells, move |outs| {
        let mut fig = FigureResult::new(
            "fig11-topology",
            "Accuracy and overhead across deployment shapes",
            "topology (1 disk, 2 grid, 3 line, 4 clustered)",
            "MAE / bytes-per-packet / ratio",
        );
        let collect = |sel: &dyn Fn(&RunOutput) -> f64| -> Vec<(f64, f64)> {
            placements
                .iter()
                .zip(&outs)
                .map(|(&(x, _, _), o)| (x, sel(o.as_ref())))
                .collect()
        };
        fig.push_series(Series::new(
            "dophy-mle",
            collect(&|o| o.score_scheme(&o.dophy).mae),
        ));
        fig.push_series(Series::new(
            "traditional-em",
            collect(&|o| o.score_scheme(&o.em).mae),
        ));
        fig.push_series(Series::new(
            "stream-bytes/pkt",
            collect(&|o| o.overhead.mean_stream_bytes()),
        ));
        fig.push_series(Series::new(
            "delivery-ratio",
            collect(&|o| o.delivery_ratio),
        ));
        fig.note("line topologies maximise path length (overhead); clustered ones stress the hop-index context".to_string());
        fig
    })
}

// ---------------------------------------------------------------------------
// tab3 — robustness across seeds
// ---------------------------------------------------------------------------

/// Seed sweep on the canonical dynamic scenario: per-seed MAE for each
/// scheme, with mean ± std in the notes (guards against single-seed luck).
/// The first sweep point *is* [`canonical_dynamic_spec`] (seed 97), so it
/// shares a cached run with fig9 and tab1.
pub fn tab3_seeds(quick: bool) -> Plan {
    let seeds: Vec<u64> = if quick {
        vec![97, 2007, 3007, 4007]
    } else {
        let mut v = vec![97];
        v.extend((2..=8).map(|s| s * 1000 + 7));
        v
    };
    let cells = seeds
        .iter()
        .map(|&seed| {
            // Seed 97 reproduces canonical_dynamic_spec exactly (same
            // structure, same seed) — a deliberate cache share.
            let sim = SimConfig {
                dynamics: LinkDynamics::Volatile {
                    sigma_per_sqrt_s: 0.02,
                },
                ..canonical_sim(seed, quick)
            };
            Cell::run(
                format!("seed={seed}"),
                RunSpec::new(sim, canonical_dophy(), duration(quick)),
            )
        })
        .collect();

    let n_seeds = seeds.len();
    Plan::new("tab3-seeds", cells, move |outs| {
        let mut fig = FigureResult::new(
            "tab3-seeds",
            "Per-seed accuracy on the canonical dynamic scenario",
            "seed index",
            "loss-ratio MAE",
        );
        let schemes: Vec<SchemeSel> = vec![
            (
                "dophy-mle",
                Box::new(|o: &RunOutput| o.score_scheme(&o.dophy).mae),
            ),
            (
                "traditional-em",
                Box::new(|o: &RunOutput| o.score_scheme(&o.em).mae),
            ),
            (
                "traditional-logls",
                Box::new(|o: &RunOutput| o.score_scheme(&o.ls).mae),
            ),
        ];
        for (name, sel) in &schemes {
            let pts: Vec<(f64, f64)> = (0..n_seeds)
                .map(|i| (i as f64 + 1.0, sel(outs[i].as_ref())))
                .collect();
            let mean = pts.iter().map(|&(_, y)| y).sum::<f64>() / pts.len() as f64;
            let var = pts.iter().map(|&(_, y)| (y - mean).powi(2)).sum::<f64>()
                / (pts.len() - 1).max(1) as f64;
            fig.note(format!("{name}: mean {:.4} ± {:.4}", mean, var.sqrt()));
            fig.push_series(Series::new(*name, pts));
        }
        // Invariant across all seeds: Dophy wins on every one.
        let always_wins = outs
            .iter()
            .all(|o| o.score_scheme(&o.dophy).mae < o.score_scheme(&o.em).mae);
        fig.note(format!(
            "dophy beats traditional on every seed: {always_wins}"
        ));
        fig
    })
}

// ---------------------------------------------------------------------------
// fig12 — node churn (failures / duty cycling)
// ---------------------------------------------------------------------------

/// Accuracy under node up/down churn — the other "dynamic" in dynamic
/// sensor networks: nodes crash, reboot, and duty-cycle, forcing route
/// re-formation around them.
pub fn fig12_node_churn(quick: bool) -> Plan {
    use dophy::protocol::NodeChurnConfig;
    // Mean uptime sweep (0 = no churn); downtime fixed at 60 s.
    let uptimes: Vec<u64> = vec![0, 1800, 900, 450, 225];
    let cells = uptimes
        .iter()
        .map(|&up| {
            let dophy = DophyConfig {
                churn: (up > 0).then_some(NodeChurnConfig {
                    mean_up: SimDuration::from_secs(up),
                    mean_down: SimDuration::from_secs(60),
                }),
                ..canonical_dophy()
            };
            Cell::run(
                format!("uptime={up}s"),
                RunSpec::new(canonical_sim(191, quick), dophy, duration(quick)),
            )
        })
        .collect();

    Plan::new("fig12-node-churn", cells, move |outs| {
        let mut fig = FigureResult::new(
            "fig12-node-churn",
            "Estimation accuracy under node up/down churn",
            "mean node uptime (s; 0 = no churn)",
            "MAE / ratio",
        );
        let collect = |sel: &dyn Fn(&RunOutput) -> f64| -> Vec<(f64, f64)> {
            uptimes
                .iter()
                .zip(&outs)
                .map(|(&u, o)| (u as f64, sel(o.as_ref())))
                .collect()
        };
        fig.push_series(Series::new(
            "dophy-mle",
            collect(&|o| o.score_scheme(&o.dophy).mae),
        ));
        fig.push_series(Series::new(
            "traditional-em",
            collect(&|o| o.score_scheme(&o.em).mae),
        ));
        fig.push_series(Series::new(
            "delivery-ratio",
            collect(&|o| o.delivery_ratio),
        ));
        fig.push_series(Series::new(
            "decode-success",
            collect(&|o| o.decode.success_ratio()),
        ));
        fig.note(
            "delivery drops with churn (packets die at powered-down relays) but the links \
             Dophy does observe stay accurately estimated"
                .to_string(),
        );
        fig
    })
}

// ---------------------------------------------------------------------------
// tab4 — energy price of measurement
// ---------------------------------------------------------------------------

/// Energy accounting: what each measurement scheme costs in radio energy.
/// A byte added at hop `j` of a `k`-hop path is transmitted and received
/// `k - j` more times, so per-packet measurement cost is a *byte-hop* sum;
/// we price byte-hops with a CC2420-class model and compare against the
/// network's total radio energy. X-axis: scheme index (1 dophy, 2 explicit
/// 2B/hop, 3 golomb-rice+ids, 4 dophy-state-only floor).
///
/// Reads the engine's trace directly after the run, so it is a single
/// custom cell (pooled and panic-isolated, but not cacheable).
pub fn tab4_energy(quick: bool) -> Plan {
    Plan::custom("tab4-energy", "energy-accounting", move || {
        use dophy::protocol::build_simulation;
        use dophy_sim::EnergyModel;

        let sim = canonical_sim(179, quick);
        let dophy_cfg = canonical_dophy();
        let (mut engine, shared) = build_simulation(&sim, &dophy_cfg);
        engine.start();
        engine.run_for(duration(quick));

        let energy = EnergyModel::default();
        let mean_frame = 31.0 + dophy::header::DophyHeader::FIXED_WIRE_BYTES as f64; // MAC 11 + payload 20 + header
        let base = energy.report(engine.trace(), mean_frame, 11.0);
        let per_byte_hop = energy.per_hop_byte_joules();

        let s = shared.lock();
        // Per-packet byte-hop cost of each scheme, from the hop histogram.
        // At transmission j of a k-hop path the packet carries j-1 hops of
        // records (receiver-side recording), so byte-hops = Σ_{j=1..k} c(j-1).
        let mut dophy_bh = 0.0; // state (13 B) every hop + stream growing
        let mut explicit_bh = 0.0; // 2 B per recorded hop
        let mut rice_bh = 0.0; // ~1.35 B per recorded hop (8b id + ~1.8b attempt)
        let mut state_bh = 0.0; // coder state alone (floor)
        let mut packets = 0.0;
        for (k, count) in s.overhead.hops_hist.iter() {
            let kf = k as f64;
            let c = count as f64;
            packets += c;
            let stream_final = s
                .overhead
                .stream_by_hops
                .get(k)
                .map(|st| st.mean())
                .unwrap_or(0.0);
            let per_hop_stream = if k > 1 {
                stream_final / (kf - 1.0)
            } else {
                0.0
            };
            let mut d = 0.0;
            let mut e = 0.0;
            let mut r = 0.0;
            let mut st = 0.0;
            for j in 1..=k {
                let recorded = (j - 1) as f64;
                d += 13.0 + per_hop_stream * recorded;
                e += 2.0 * recorded;
                r += 1.35 * recorded;
                st += 13.0;
            }
            dophy_bh += c * d;
            explicit_bh += c * e;
            rice_bh += c * r;
            state_bh += c * st;
        }
        let per_pkt = |bh: f64| bh / packets.max(1.0);
        let joules_per_hour = |bh: f64| bh * per_byte_hop * 3600.0 / duration(quick).as_secs_f64();
        let share = |bh: f64| {
            let j = bh * per_byte_hop;
            100.0 * j / (base.total_joules().max(1e-12))
        };

        let mut fig = FigureResult::new(
            "tab4-energy",
            "Radio-energy price of measurement overhead",
            "scheme (1 dophy, 2 explicit, 3 rice, 4 state-floor)",
            "byte-hops/pkt | J/hour | % of radio energy",
        );
        let schemes = [
            (1.0, dophy_bh),
            (2.0, explicit_bh + state_bh * 0.0), // explicit needs no coder state
            (3.0, rice_bh),
            (4.0, state_bh),
        ];
        fig.push_series(Series::new(
            "byte-hops/pkt",
            schemes.iter().map(|&(x, bh)| (x, per_pkt(bh))).collect(),
        ));
        fig.push_series(Series::new(
            "joules/hour",
            schemes
                .iter()
                .map(|&(x, bh)| (x, joules_per_hour(bh)))
                .collect(),
        ));
        fig.push_series(Series::new(
            "%-of-radio-energy",
            schemes.iter().map(|&(x, bh)| (x, share(bh))).collect(),
        ));
        fig.note(format!(
            "network radio energy {:.3} J over {:.0} s ({} packets); measurement prices are byte-hop × {:.2} µJ",
            base.total_joules(),
            duration(quick).as_secs_f64(),
            packets as u64,
            per_byte_hop * 1e6,
        ));
        fig.note(
            "dophy's fixed coder state dominates its cost; the arithmetic stream itself is \
             cheaper than every per-hop-record alternative"
                .to_string(),
        );
        fig
    })
}

/// Corruption detection, measured in-band: the fault layer flips bits in
/// frames at receive time inside live runs, and the sink's structural
/// checks plus decode errors classify each delivered packet. X-axis:
/// injected bit flips per corrupted frame; series are outcome fractions
/// over the packets that reached the sink in corrupted form.
pub fn tab5_corruption(quick: bool) -> Plan {
    let flips: Vec<u8> = vec![1, 2, 4];
    let cells = flips
        .iter()
        .map(|&k| {
            Cell::run(
                format!("flips={k}"),
                RunSpec {
                    faults: Some(FaultConfig {
                        frame_corrupt_prob: 0.05,
                        flips_per_frame: k,
                        truncate_prob: 0.1,
                        header_bias: 0.3,
                        crash: None,
                        dissemination: None,
                    }),
                    ..RunSpec::new(
                        canonical_sim(199, quick),
                        canonical_dophy(),
                        duration(quick) / 4,
                    )
                },
            )
        })
        .collect();

    Plan::new("tab5-corruption", cells, move |outs| {
        let mut fig = FigureResult::new(
            "tab5-corruption",
            "In-band frame corruption: quarantine vs destruction vs survival",
            "bit flips per corrupted frame",
            "fraction / count",
        );
        let collect = |sel: &dyn Fn(&RunOutput) -> f64| -> Vec<(f64, f64)> {
            flips
                .iter()
                .zip(&outs)
                .map(|(&k, o)| (f64::from(k), sel(o.as_ref())))
                .collect()
        };
        fig.push_series(Series::new(
            "quarantine-rate",
            collect(&|o| {
                let d = o.decode;
                let seen = d.ok + d.quarantined();
                d.quarantined() as f64 / seen.max(1) as f64
            }),
        ));
        fig.push_series(Series::new(
            "decode-success",
            collect(&|o| o.decode.success_ratio()),
        ));
        fig.push_series(Series::new(
            "frames-corrupted",
            collect(&|o| {
                o.faults
                    .map_or(0.0, |f| f.injection.frames_corrupted as f64)
            }),
        ));
        fig.push_series(Series::new(
            "frames-destroyed",
            collect(&|o| o.faults.map_or(0.0, |f| f.frames_destroyed as f64)),
        ));
        fig.push_series(Series::new(
            "dophy-mae",
            collect(&|o| o.score_scheme(&o.dophy).mae),
        ));
        fig.note(
            "quarantined = typed decode failure (malformed / bad hop count / bad index / \
             path mismatch / coding); the estimator ingests only packets that decode Ok, \
             so corruption costs coverage, never silent wrong observations"
                .to_string(),
        );
        fig.note(
            "destroyed frames failed header parsing outright (truncation, carry-byte or \
             cache-size corruption) and never reach decode; coding redundancy lets some \
             low-order stream flips still decode to the true hop sequence"
                .to_string(),
        );
        fig
    })
}

// ---------------------------------------------------------------------------
// fig13 — accuracy under deterministic fault injection
// ---------------------------------------------------------------------------

/// Estimation accuracy as the frame-corruption rate grows: corrupted
/// packets are quarantined (never ingested), so Dophy's error on the links
/// it still observes should stay nearly flat while coverage shrinks.
pub fn fig13_faults(quick: bool) -> Plan {
    let rates: Vec<f64> = vec![0.0, 0.005, 0.01, 0.02, 0.05];
    let cells = rates
        .iter()
        .map(|&rate| {
            Cell::run(
                format!("rate={rate}"),
                RunSpec {
                    faults: (rate > 0.0).then(|| FaultConfig::corruption(rate)),
                    ..RunSpec::new(
                        canonical_sim(131, quick),
                        canonical_dophy(),
                        duration(quick) / 2,
                    )
                },
            )
        })
        .collect();

    Plan::new("fig13-faults", cells, move |outs| {
        let mut fig = FigureResult::new(
            "fig13-faults",
            "Accuracy and coverage under frame-corruption faults",
            "frame corruption probability",
            "MAE / ratio",
        );
        let collect = |sel: &dyn Fn(&RunOutput) -> f64| -> Vec<(f64, f64)> {
            rates
                .iter()
                .zip(&outs)
                .map(|(&r, o)| (r, sel(o.as_ref())))
                .collect()
        };
        fig.push_series(Series::new(
            "dophy-mae",
            collect(&|o| o.score_scheme(&o.dophy).mae),
        ));
        fig.push_series(Series::new(
            "coverage",
            collect(&|o| o.score_scheme(&o.dophy).coverage()),
        ));
        fig.push_series(Series::new(
            "decode-success",
            collect(&|o| o.decode.success_ratio()),
        ));
        fig.push_series(Series::new(
            "quarantine-rate",
            collect(&|o| {
                let d = o.decode;
                let seen = d.ok + d.quarantined();
                d.quarantined() as f64 / seen.max(1) as f64
            }),
        ));
        let base = outs[0].score_scheme(&outs[0].dophy).mae;
        if let Some(i) = rates.iter().position(|&r| r == 0.01) {
            let at_1pct = outs[i].score_scheme(&outs[i].dophy).mae;
            fig.note(format!(
                "MAE at 1% corruption {at_1pct:.4} vs fault-free {base:.4} \
                 ({:+.1}% — quarantine keeps the estimator clean)",
                100.0 * (at_1pct - base) / base.max(1e-9),
            ));
        }
        fig.note(
            "accuracy stays flat until the quarantine rate starts to dominate coverage: \
             faults cost samples, not correctness"
                .to_string(),
        );
        fig
    })
}

// ---------------------------------------------------------------------------
// fig14 — engine scalability sweep at constant density
// ---------------------------------------------------------------------------

/// Engine scalability from 200 to 1000 nodes at constant node density
/// (disk radius grows as √n, so per-node degree — and therefore the
/// broadcast fan-out — stays roughly fixed while total work scales
/// linearly). Records the reproduction's *performance* envelope alongside
/// the protocol metrics: wall time, engine events per wall-clock second,
/// process peak RSS, plus the accuracy/overhead the stack keeps
/// delivering at scale.
///
/// Unlike every other experiment, the wall-time, events/sec, and peak-RSS
/// series are machine- and run-dependent by design (this *is* a perf
/// figure), so fig14's JSON is not byte-stable across reruns or worker
/// counts. The `dophy-mae`, `bytes-per-packet`, `delivery-ratio`, and
/// `events-per-sim-sec` series stay fully deterministic. Peak RSS is a
/// process-wide high-water mark, so the cells are declared smallest-first
/// and the figure is only a true per-cell peak at `--jobs 1`.
///
/// Beyond 1000 nodes the sweep switches to the sharded multi-core engine
/// (`*-sharded` series, shard count scaling with n): the single event
/// loop is the scaling bottleneck the sharded engine exists to remove.
/// The n=1000 point appears in both series — same workload on both
/// engines — so the per-core engine overhead/speedup is read directly off
/// the figure, and the accuracy series answer the real question at 10k
/// nodes: does the stack still deliver and estimate. (At 10k nodes the
/// routing tree alone takes a few hundred simulated seconds to span the
/// ~30-hop network, so quick-mode delivery is dominated by tree
/// formation; the full run is the meaningful accuracy sample.)
pub fn fig14_scale(quick: bool) -> Plan {
    let sizes: Vec<u32> = vec![200, 400, 600, 800, 1000];
    // (nodes, shards): shard count grows with n so per-shard work stays
    // roughly constant; every count yields identical results anyway.
    let sharded: Vec<(u32, u16)> = if quick {
        vec![(1000, 8), (10_000, 32)]
    } else {
        vec![(1000, 8), (4000, 16), (10_000, 32)]
    };
    let disk = |n: u32| SimConfig {
        placement: Placement::UniformDisk {
            n,
            radius: 120.0 * (f64::from(n) / 200.0).sqrt(),
        },
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed: 211,
    };
    // Scale cells never read the per-packet hop log (only fig3 does),
    // and at 10k nodes it dominates peak RSS — drop it so peak-rss-mib
    // measures the engine, not the harness recorder.
    let mut cells: Vec<Cell> = sizes
        .iter()
        .map(|&n| {
            Cell::run(
                format!("n={n}"),
                RunSpec::new(disk(n), canonical_dophy(), duration(quick) / 2).without_true_hops(),
            )
        })
        .collect();
    cells.extend(sharded.iter().map(|&(n, shards)| {
        Cell::run(
            format!("n={n}-sharded{shards}"),
            RunSpec::new(disk(n), canonical_dophy(), duration(quick) / 2)
                .with_shards(shards)
                .without_true_hops(),
        )
    }));

    let sharded_sizes: Vec<u32> = sharded.iter().map(|&(n, _)| n).collect();
    Plan::new("fig14-scale", cells, move |outs| {
        let mut fig = FigureResult::new(
            "fig14-scale",
            "Engine scalability at constant density (200-1000 nodes)",
            "network size (nodes)",
            "seconds / events per second / MiB / MAE / bytes",
        );
        let single = &outs[..sizes.len()];
        let shard_outs = &outs[sizes.len()..];
        let series_for = |label: &str,
                          xs: &[u32],
                          chunk: &[std::sync::Arc<RunOutput>],
                          sel: &dyn Fn(&RunOutput) -> f64|
         -> Series {
            Series::new(
                label,
                xs.iter()
                    .zip(chunk)
                    .map(|(&n, o)| (f64::from(n), sel(o.as_ref())))
                    .collect::<Vec<_>>(),
            )
        };
        type Selector<'a> = &'a dyn Fn(&RunOutput) -> f64;
        let selectors: [(&str, Selector); 7] = [
            ("wall-seconds", &|o| o.telemetry.wall_seconds),
            ("events-per-wall-sec", &|o| o.telemetry.events_per_sec),
            ("events-per-sim-sec", &|o| {
                o.telemetry.events_processed as f64 / o.telemetry.sim_seconds.max(1e-9)
            }),
            ("peak-rss-mib", &|o| {
                o.telemetry.peak_rss_bytes as f64 / (1024.0 * 1024.0)
            }),
            ("dophy-mae", &|o| o.score_scheme(&o.dophy).mae),
            ("bytes-per-packet", &|o| o.overhead.mean_stream_bytes()),
            ("delivery-ratio", &|o| o.delivery_ratio),
        ];
        for (name, sel) in selectors {
            fig.push_series(series_for(name, &sizes, single, sel));
            fig.push_series(series_for(
                &format!("{name}-sharded"),
                &sharded_sizes,
                shard_outs,
                sel,
            ));
        }
        let small = &single[0].telemetry;
        let big = single.last().unwrap().telemetry;
        fig.note(format!(
            "single loop, 1000 nodes: {} events in {:.2} s wall ({:.0} ev/s, sim/wall \
             {:.0}x); 200 nodes: {:.2} s — wall time should scale ~linearly with n at \
             constant density",
            big.events_processed,
            big.wall_seconds,
            big.events_per_sec,
            big.sim_wall_ratio,
            small.wall_seconds,
        ));
        let sharded_big = shard_outs.last().unwrap();
        fig.note(format!(
            "sharded engine, {} nodes: {} events in {:.2} s wall ({:.0} ev/s), \
             delivery ratio {:.3}. The shared n=1000 point gives the \
             engine-vs-engine throughput ratio on this machine",
            sharded_sizes.last().unwrap(),
            sharded_big.telemetry.events_processed,
            sharded_big.telemetry.wall_seconds,
            sharded_big.telemetry.events_per_sec,
            sharded_big.delivery_ratio,
        ));
        fig.note(
            "wall-seconds / events-per-wall-sec / peak-rss-mib are machine- and \
             run-dependent (and peak RSS is process-wide: trustworthy per cell \
             only at --jobs 1); the remaining series are deterministic"
                .to_string(),
        );
        fig
    })
}

/// Fig. 15 (extension): the estimator bake-off — accuracy vs probe budget
/// for the three pluggable inference backends (`dophy::infer`), under the
/// canonical dynamic regime where the comparison is interesting.
///
/// The paper's headline claim is that in-band retransmission counts beat
/// end-to-end tomography; this figure finally tests it like-for-like: one
/// run set, every backend fed from the same evidence stream, scored
/// against the same truth. Probe budget is swept as run duration at the
/// canonical traffic rate and reported on the x-axis as *delivered
/// packets* (the budget the sink actually got). The traditional EM
/// baseline rides along as the reference end-to-end method.
///
/// The longest cell is byte-identical to `canonical_dynamic_spec`, so it
/// shares one cached simulation with fig9/tab1/tab3 — the whole bake-off
/// costs only the shorter-duration cells. Backends solve from evidence
/// accumulated *inside* the shared run; no backend-specific re-runs exist.
pub fn fig15_bakeoff(quick: bool) -> Plan {
    let durations_s: Vec<u64> = if quick {
        vec![180, 420, 900]
    } else {
        vec![420, 900, 1800, 3600]
    };
    let cells = durations_s
        .iter()
        .map(|&secs| {
            Cell::run(
                format!("duration={secs}s"),
                RunSpec {
                    duration: SimDuration::from_secs(secs),
                    ..canonical_dynamic_spec(quick)
                },
            )
        })
        .collect();

    Plan::new("fig15-bakeoff", cells, move |outs| {
        let mut fig = FigureResult::new(
            "fig15-bakeoff",
            "Estimator bake-off: in-band MLE vs MINC vs sparse-L1 vs probe budget",
            "delivered packets (probe budget)",
            "loss-ratio MAE",
        );
        let collect = |sel: &dyn Fn(&RunOutput) -> f64| -> Vec<(f64, f64)> {
            outs.iter()
                .map(|o| (o.overhead.packets as f64, sel(o.as_ref())))
                .collect()
        };
        fig.push_series(Series::new(
            "in-band",
            collect(&|o| o.score_scheme(&o.dophy).mae),
        ));
        fig.push_series(Series::new(
            "minc",
            collect(&|o| o.score_scheme(&o.minc).mae),
        ));
        fig.push_series(Series::new(
            "sparse-l1",
            collect(&|o| o.score_scheme(&o.sparse_l1).mae),
        ));
        fig.push_series(Series::new(
            "em-baseline",
            collect(&|o| o.score_scheme(&o.em).mae),
        ));
        fig.note(
            "measured outcome: the in-band backend dominates at every budget — each \
             delivered packet carries a geometric sample for every hop it crossed, while \
             the end-to-end backends split one Bernoulli outcome across the whole path. \
             With R=7 ARQ the post-retry hop losses the end-to-end backends can see are \
             a tiny fraction of the per-transmission loss being scored, so MINC and \
             sparse-L1 report near-zero loss everywhere and their MAE ~ mean true loss, \
             on par with (not better than) the stale-attribution EM baseline; their \
             per-window parent conditioning only pays off in regimes where end-to-end \
             losses are actually observable"
                .to_string(),
        );
        fig
    })
}

/// Registry of all experiments by id.
pub fn registry() -> Vec<Experiment> {
    vec![
        ("fig3", fig3_encoding_overhead),
        ("fig4", fig4_aggregation),
        ("fig5", fig5_model_update),
        ("fig6", fig6_accuracy_vs_traffic),
        ("fig7", fig7_accuracy_vs_dynamics),
        ("fig8", fig8_accuracy_vs_size),
        ("fig9", fig9_error_cdf),
        ("fig10-tracking", fig10_tracking),
        ("fig11-topology", fig11_topology),
        ("fig12-node-churn", fig12_node_churn),
        ("fig13-faults", fig13_faults),
        ("fig14-scale", fig14_scale),
        ("tab1", tab1_summary),
        ("tab2", tab2_decode),
        ("tab3-seeds", tab3_seeds),
        ("tab4-energy", tab4_energy),
        ("tab5-corruption", tab5_corruption),
        ("ablation-truncation", ablation_truncation),
        ("ablation-klgate", ablation_klgate),
        ("ablation-prior", ablation_prior),
        ("ablation-burst", ablation_burst),
        ("fig15-bakeoff", fig15_bakeoff),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{cache_key, execute_plans};
    use crate::plan::CellWork;

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|(id, _)| *id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment ids");
        assert!(n >= 14, "expected the full experiment suite, got {n}");
        // Building a plan is cheap (no simulation runs): every entry's
        // plan id must match its registry id, every cell has a label.
        for (id, f) in &reg {
            let plan = f(true);
            assert_eq!(plan.id, *id, "plan id must match registry id");
            assert!(!plan.cells.is_empty(), "{id} declares no cells");
            for cell in &plan.cells {
                assert!(!cell.label.is_empty(), "{id} has an unlabelled cell");
            }
        }
    }

    #[test]
    fn canonical_dynamic_spec_is_shared_across_experiments() {
        // fig9, tab1, and tab3's first cell — and the bake-off's longest
        // cell — must carry byte-equal specs so the executor runs one
        // simulation for all four.
        let spec_of = |plan: Plan| match plan.cells.into_iter().next().unwrap().work {
            CellWork::Run { spec, .. } => spec,
            CellWork::Custom(_) => panic!("expected a run cell"),
        };
        let last_spec_of = |plan: Plan| match plan.cells.into_iter().next_back().unwrap().work {
            CellWork::Run { spec, .. } => spec,
            CellWork::Custom(_) => panic!("expected a run cell"),
        };
        let key = cache_key(&canonical_dynamic_spec(true));
        assert_eq!(cache_key(&spec_of(fig9_error_cdf(true))), key);
        assert_eq!(cache_key(&spec_of(tab1_summary(true))), key);
        assert_eq!(cache_key(&spec_of(tab3_seeds(true))), key);
        assert_eq!(cache_key(&last_spec_of(fig15_bakeoff(true))), key);
    }

    #[test]
    fn truncation_ablation_smoke() {
        // The cheapest experiment end-to-end (two-node networks): verifies
        // the harness wiring and the headline claim in miniature.
        let outcome = execute_plans(vec![ablation_truncation(true)], 2);
        let fig = outcome.experiments[0]
            .result
            .as_ref()
            .expect("truncation ablation runs");
        assert_eq!(fig.series.len(), 2);
        let mle = &fig.series[0];
        let naive = &fig.series[1];
        assert!(!mle.points.is_empty());
        // At the lossiest point the naive estimator must be more optimistic
        // (more negative bias) than the MLE.
        let last_mle = mle.points.last().unwrap().1;
        let last_naive = naive.points.last().unwrap().1;
        assert!(
            last_naive < last_mle,
            "naive bias {last_naive} should undershoot MLE bias {last_mle}"
        );
    }
}
