//! Regenerates the paper's figures and tables.
//!
//! ```text
//! experiments <id>... [--quick] [--jobs N]   run the named experiments
//! experiments all [--quick] [--jobs N]       run everything
//! experiments list                           list experiment ids
//! ```
//!
//! Every selected experiment contributes its simulation cells to one
//! shared bounded worker pool (`--jobs N`, or `DOPHY_JOBS`, default: the
//! machine's cores); byte-equal scenarios execute once via the
//! content-addressed run cache. Results print as aligned text tables and
//! are saved as JSON under `target/experiments/`, together with
//! `BENCH_telemetry.json` (per-run engine telemetry) and
//! `BENCH_harness.json` (pool/cache/per-experiment execution telemetry).

use dophy_bench::executor::{execute_plans, resolve_jobs};
use dophy_bench::figures::{registry, Experiment};
use dophy_bench::plan::Plan;

fn parse_args(args: &[String]) -> (Vec<&str>, bool, Option<usize>) {
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let mut jobs = None;
    let mut names = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--jobs" || a == "-j" {
            i += 1;
            jobs = args.get(i).and_then(|v| v.parse::<usize>().ok());
            if jobs.is_none() {
                eprintln!("--jobs needs a positive integer");
                std::process::exit(2);
            }
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = v.parse::<usize>().ok();
            if jobs.is_none() {
                eprintln!("--jobs needs a positive integer");
                std::process::exit(2);
            }
        } else if !a.starts_with('-') {
            names.push(a);
        }
        i += 1;
    }
    (names, quick, jobs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (names, quick, jobs_flag) = parse_args(&args);

    let reg = registry();
    if names.is_empty() || names == ["list"] {
        eprintln!(
            "usage: experiments <id>... [--quick] [--jobs N] | all [--quick] [--jobs N] | list"
        );
        eprintln!("experiments:");
        for (id, _) in &reg {
            eprintln!("  {id}");
        }
        if names.is_empty() {
            std::process::exit(2);
        }
        return;
    }

    let selected: Vec<&Experiment> = if names == ["all"] {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for n in &names {
            match reg.iter().find(|(id, _)| id == n) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment '{n}' (try 'list')");
                    std::process::exit(2);
                }
            }
        }
        sel
    };

    let plans: Vec<Plan> = selected.iter().map(|(_, f)| f(quick)).collect();
    let total_cells: usize = plans.iter().map(|p| p.cells.len()).sum();
    let jobs = resolve_jobs(jobs_flag, total_cells);
    eprintln!(
        ">>> running {} experiment(s), {} cell(s), {} worker(s){}",
        plans.len(),
        total_cells,
        jobs,
        if quick { " (quick)" } else { "" }
    );

    let outcome = execute_plans(plans, jobs);

    let mut failures = 0usize;
    for exp in &outcome.experiments {
        match &exp.result {
            Ok(fig) => {
                println!("{}", fig.render());
                match fig.save() {
                    Ok(path) => eprintln!("    saved {}", path.display()),
                    Err(e) => eprintln!("    could not save JSON: {e}"),
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("!!! {} failed: {e}", exp.id);
            }
        }
    }

    let rep = &outcome.report;
    for cell in &rep.cells {
        eprintln!(
            "    cell {}/{}: {}{:.1}s (started +{:.1}s)",
            cell.experiment,
            cell.label,
            if cell.cached { "cached, " } else { "" },
            cell.wall_seconds,
            cell.started_s,
        );
    }
    for exp in &rep.experiments {
        eprintln!(
            "    experiment {}: {} cell(s), {:.1}s{}",
            exp.id,
            exp.cells,
            exp.wall_seconds,
            if exp.ok { "" } else { " FAILED" }
        );
    }
    eprintln!(
        ">>> suite: {:.1}s wall | {} workers (peak {}) | {} unique runs, {} cache hits",
        rep.suite_wall_seconds, rep.jobs, rep.max_pool_depth, rep.unique_runs, rep.cache_hits
    );

    let out_dir = std::path::Path::new("target/experiments");
    let bench_path = out_dir.join("BENCH_telemetry.json");
    match dophy_bench::telemetry::write_bench_file(&bench_path) {
        Ok(()) => eprintln!("telemetry saved to {}", bench_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", bench_path.display()),
    }
    let harness_path = out_dir.join("BENCH_harness.json");
    match serde_json::to_string_pretty(rep)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
        .and_then(|json| {
            std::fs::create_dir_all(out_dir)?;
            std::fs::write(&harness_path, json)
        }) {
        Ok(()) => eprintln!("harness report saved to {}", harness_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", harness_path.display()),
    }

    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
