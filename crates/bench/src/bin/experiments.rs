//! Regenerates the paper's figures and tables.
//!
//! ```text
//! experiments <id>... [--quick]     run the named experiments
//! experiments all [--quick]         run everything
//! experiments list                  list experiment ids
//! ```
//!
//! Results print as aligned text tables and are saved as JSON under
//! `target/experiments/`.

use dophy_bench::figures::{registry, Experiment};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(String::as_str)
        .collect();

    let reg = registry();
    if names.is_empty() || names == ["list"] {
        eprintln!("usage: experiments <id>... [--quick] | all [--quick] | list");
        eprintln!("experiments:");
        for (id, _) in &reg {
            eprintln!("  {id}");
        }
        if names.is_empty() {
            std::process::exit(2);
        }
        return;
    }

    let selected: Vec<&Experiment> = if names == ["all"] {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for n in &names {
            match reg.iter().find(|(id, _)| id == n) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment '{n}' (try 'list')");
                    std::process::exit(2);
                }
            }
        }
        sel
    };

    for (id, f) in selected {
        let t0 = Instant::now();
        eprintln!(
            ">>> running {id}{} ...",
            if quick { " (quick)" } else { "" }
        );
        let runs_before = dophy_bench::telemetry::recorded_runs().len();
        let fig = f(quick);
        println!("{}", fig.render());
        // Per-run telemetry summary for every simulation this figure ran.
        for rec in &dophy_bench::telemetry::recorded_runs()[runs_before..] {
            eprintln!(
                "    run {}: {} events, {:.0} ev/s, sim/wall {:.0}x",
                rec.label,
                rec.telemetry.events_processed,
                rec.telemetry.events_per_sec,
                rec.telemetry.sim_wall_ratio
            );
        }
        match fig.save() {
            Ok(path) => eprintln!(
                "    saved {} ({:.1}s)",
                path.display(),
                t0.elapsed().as_secs_f64()
            ),
            Err(e) => eprintln!("    could not save JSON: {e}"),
        }
    }

    let bench_path = std::path::Path::new("target/experiments/BENCH_telemetry.json");
    match dophy_bench::telemetry::write_bench_file(bench_path) {
        Ok(()) => eprintln!("telemetry saved to {}", bench_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", bench_path.display()),
    }
}
