//! Run a custom Dophy scenario from a JSON specification.
//!
//! ```text
//! dophy-run --print-default > scenario.json   # template to edit
//! dophy-run scenario.json                     # run it, JSON results to stdout
//! dophy-run scenario.json --text              # human-readable summary
//! ```
//!
//! The specification is a [`dophy_bench::RunSpec`]: network (placement,
//! radio, MAC, link dynamics, seed), Dophy stack configuration, duration,
//! and runner knobs. Everything a downstream user needs to evaluate their
//! own deployment shape without writing Rust.

use dophy_bench::{run_scenario, RunSpec};
use dophy::protocol::build_simulation;
use dophy::diagnosis::{DiagnosisConfig, NetworkHealthReport};
use dophy_sim::SimTime;
use dophy_sim::{SimConfig, SimDuration};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct LinkRow {
    src: u16,
    dst: u16,
    estimated_loss: f64,
    true_loss: Option<f64>,
}

#[derive(Serialize)]
struct Results {
    delivered_packets: u64,
    delivery_ratio: f64,
    decode_success: f64,
    stream_bytes_per_packet: f64,
    measurement_bytes_per_packet: f64,
    dissemination_bytes: u64,
    model_refreshes: u64,
    parent_changes_per_node_hour: f64,
    dophy_mae: f64,
    traditional_em_mae: f64,
    links: Vec<LinkRow>,
}

fn default_spec() -> RunSpec {
    RunSpec::new(
        SimConfig::canonical(42),
        dophy::protocol::DophyConfig::default(),
        SimDuration::from_secs(1800),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--print-default") {
        println!(
            "{}",
            serde_json::to_string_pretty(&default_spec()).expect("spec serializes")
        );
        return;
    }
    let Some(path) = args.iter().find(|a| !a.starts_with('-')) else {
        eprintln!("usage: dophy-run <scenario.json> [--text] | --print-default");
        std::process::exit(2);
    };
    let text = args.iter().any(|a| a == "--text");

    let raw = match std::fs::read_to_string(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let spec: RunSpec = match serde_json::from_str(&raw) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid scenario: {e}");
            std::process::exit(1);
        }
    };

    eprintln!(
        "running {} nodes for {:.0} s (seed {}) ...",
        spec.sim.placement.node_count(),
        spec.duration.as_secs_f64(),
        spec.sim.seed
    );
    let out = run_scenario(&spec);

    let mut links: Vec<LinkRow> = out
        .dophy
        .iter()
        .map(|(&(src, dst), &loss)| LinkRow {
            src,
            dst,
            estimated_loss: loss,
            true_loss: out.truth.get(&(src, dst)).copied(),
        })
        .collect();
    links.sort_by_key(|l| (l.src, l.dst));

    let results = Results {
        delivered_packets: out.overhead.packets,
        delivery_ratio: out.delivery_ratio,
        decode_success: out.decode.success_ratio(),
        stream_bytes_per_packet: out.overhead.mean_stream_bytes(),
        measurement_bytes_per_packet: out.overhead.mean_measurement_bytes(),
        dissemination_bytes: out.dissemination_bytes,
        model_refreshes: out.refreshes,
        parent_changes_per_node_hour: out.churn.changes_per_node_hour,
        dophy_mae: out.score_scheme(&out.dophy).mae,
        traditional_em_mae: out.score_scheme(&out.em).mae,
        links,
    };

    if text {
        // Also produce the operator-facing health report from a dedicated
        // run of the same scenario (run_scenario consumes its engine).
        let (mut engine, shared) = build_simulation(&spec.sim, &spec.dophy);
        engine.start();
        engine.run_for(spec.duration);
        let health = NetworkHealthReport::generate(
            &shared.lock(),
            SimTime::ZERO + spec.duration,
            &DiagnosisConfig {
                max_attempts: spec.sim.mac.max_attempts,
                min_samples: spec.min_est_samples,
                ..DiagnosisConfig::default()
            },
        );
        println!("{}", health.render(10));
        println!("delivered packets        : {}", results.delivered_packets);
        println!("delivery ratio           : {:.4}", results.delivery_ratio);
        println!("decode success           : {:.4}", results.decode_success);
        println!(
            "stream / measurement     : {:.2} / {:.2} B per packet",
            results.stream_bytes_per_packet, results.measurement_bytes_per_packet
        );
        println!(
            "dissemination            : {} B over {} refreshes",
            results.dissemination_bytes, results.model_refreshes
        );
        println!(
            "routing churn            : {:.2} parent changes/node/hour",
            results.parent_changes_per_node_hour
        );
        println!("dophy MAE                : {:.4}", results.dophy_mae);
        println!("traditional EM MAE       : {:.4}", results.traditional_em_mae);
        // Worst links table.
        let mut by_loss: BTreeMap<u64, &LinkRow> = BTreeMap::new();
        for l in &results.links {
            by_loss.insert((l.estimated_loss * 1e9) as u64, l);
        }
        println!("\nworst links (estimated):");
        for (_, l) in by_loss.iter().rev().take(10) {
            println!(
                "  n{}->n{}: est {:.3} true {}",
                l.src,
                l.dst,
                l.estimated_loss,
                l.true_loss
                    .map(|t| format!("{t:.3}"))
                    .unwrap_or_else(|| "-".into())
            );
        }
    } else {
        println!(
            "{}",
            serde_json::to_string_pretty(&results).expect("results serialize")
        );
    }
}
