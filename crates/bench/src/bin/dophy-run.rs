//! Run a custom Dophy scenario from a JSON specification.
//!
//! ```text
//! dophy-run --print-default > scenario.json   # template to edit
//! dophy-run scenario.json                     # run it, JSON results to stdout
//! dophy-run scenario.json --text              # human-readable summary
//! dophy-run scenario.json --trace-out run.jsonl --metrics-out metrics.json
//! dophy-run scenario.json --progress          # heartbeat on stderr
//! ```
//!
//! The specification is a [`dophy_bench::RunSpec`]: network (placement,
//! radio, MAC, link dynamics, seed), Dophy stack configuration, duration,
//! and runner knobs. Everything a downstream user needs to evaluate their
//! own deployment shape without writing Rust.
//!
//! `--shards N` overrides the spec's engine selection: `N > 0` drives the
//! run with the sharded multi-core engine (`N` spatial shards, results
//! identical for any `N` at the same seed), `0` forces the single-loop
//! engine. Large topologies (10k+ nodes) should shard.
//!
//! `--estimator in-band|minc|sparse-l1` selects which inference backend's
//! snapshot fills the `links` table and `estimator_mae` (default
//! `in-band`). Every backend runs inside the same (cached) simulation —
//! the flag is a read-side choice and never re-runs anything.
//!
//! Observability flags (all optional, none change the results):
//!
//! * `--trace-out <path>` — stream structured engine/protocol events;
//!   `--trace-format jsonl` (default) writes one JSON record per line,
//!   `--trace-format chrome` writes a Chrome-trace/Perfetto JSON array of
//!   causal lifecycle spans (open it in `chrome://tracing` or
//!   <https://ui.perfetto.dev>); `--trace-sample N` keeps 1-in-N trace
//!   ids (chrome format only, whole lifecycles);
//! * `--profile <path>` — enable hot-path self-profiling and write the
//!   per-subsystem wall-time report as JSON (works on both engines; with
//!   `--shards N` wall time aggregates across worker threads);
//! * `--flight-recorder <path>` — keep a fixed-size ring of the last
//!   observer events and dump them to `<path>` as postmortem JSONL if the
//!   run panics (nothing is written on success);
//! * `--metrics-out <path>` — write the metrics time series (counters,
//!   gauges, histograms) sampled every `--metrics-every <secs>` (default
//!   60) of simulated time;
//! * `--progress` — print a heartbeat (events/sec, sim-vs-wall ratio,
//!   % complete) to stderr after every attribution window.
//!
//! Each run also appends hot-loop telemetry (events/sec) to
//! `target/BENCH_telemetry.json` so perf changes leave a trail.

use dophy::diagnosis::{DiagnosisConfig, NetworkHealthReport};
use dophy::infer::EstimatorKind;
use dophy::protocol::{build_sharded_simulation, build_simulation};
use dophy_bench::{execute_cell, resolve_jobs, telemetry, FaultSummary, Instruments, RunSpec};
use dophy_sim::obs::{FlightRecorder, JsonlTracer, FLIGHT_RECORDER_DEFAULT_CAPACITY};
use dophy_sim::ChromeTracer;
use dophy_sim::SimTime;
use dophy_sim::{SimConfig, SimDuration};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::Arc;

#[derive(Serialize)]
struct LinkRow {
    src: u32,
    dst: u32,
    estimated_loss: f64,
    true_loss: Option<f64>,
}

#[derive(Serialize)]
struct Results {
    delivered_packets: u64,
    delivery_ratio: f64,
    decode_success: f64,
    packets_quarantined: u64,
    stream_bytes_per_packet: f64,
    measurement_bytes_per_packet: f64,
    dissemination_bytes: u64,
    model_refreshes: u64,
    parent_changes_per_node_hour: f64,
    dophy_mae: f64,
    traditional_em_mae: f64,
    /// Which inference backend populated `links`/`estimator_mae`
    /// (`--estimator`; the in-band default reproduces the historical
    /// output fields).
    estimator: String,
    estimator_mae: f64,
    /// Present only when the scenario enabled fault injection.
    faults: Option<FaultSummary>,
    links: Vec<LinkRow>,
}

fn default_spec() -> RunSpec {
    RunSpec::new(
        SimConfig::canonical(42),
        dophy::protocol::DophyConfig::default(),
        SimDuration::from_secs(1800),
    )
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

struct Cli {
    spec_path: Option<String>,
    text: bool,
    print_default: bool,
    progress: bool,
    trace_out: Option<PathBuf>,
    trace_format: TraceFormat,
    trace_sample: u64,
    profile_out: Option<PathBuf>,
    flight_recorder: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    metrics_every_s: f64,
    jobs: Option<usize>,
    shards: Option<u16>,
    estimator: EstimatorKind,
}

const USAGE: &str = "usage: dophy-run <scenario.json> [--text] [--progress] [--jobs N] \
[--shards N] [--estimator in-band|minc|sparse-l1] \
[--trace-out <path>] [--trace-format jsonl|chrome] [--trace-sample N] \
[--profile <path>] [--flight-recorder <path>] \
[--metrics-out <path>] [--metrics-every <secs>] | --print-default";

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        spec_path: None,
        text: false,
        print_default: false,
        progress: false,
        trace_out: None,
        trace_format: TraceFormat::Jsonl,
        trace_sample: 1,
        profile_out: None,
        flight_recorder: None,
        metrics_out: None,
        metrics_every_s: 60.0,
        jobs: None,
        shards: None,
        estimator: EstimatorKind::InBand,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg {
            "--text" => cli.text = true,
            "--print-default" => cli.print_default = true,
            "--progress" => cli.progress = true,
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value(&mut i)?)),
            "--estimator" => cli.estimator = value(&mut i)?.parse()?,
            "--trace-format" => {
                cli.trace_format = match value(&mut i)?.as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "chrome" => TraceFormat::Chrome,
                    other => {
                        return Err(format!(
                            "--trace-format wants 'jsonl' or 'chrome', got {other}"
                        ))
                    }
                };
            }
            "--trace-sample" => {
                let raw = value(&mut i)?;
                cli.trace_sample =
                    raw.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(|| {
                        format!("--trace-sample wants a positive integer, got {raw}")
                    })?;
            }
            "--profile" => cli.profile_out = Some(PathBuf::from(value(&mut i)?)),
            "--flight-recorder" => cli.flight_recorder = Some(PathBuf::from(value(&mut i)?)),
            "--metrics-out" => cli.metrics_out = Some(PathBuf::from(value(&mut i)?)),
            "--metrics-every" => {
                let raw = value(&mut i)?;
                cli.metrics_every_s = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|s| *s > 0.0)
                    .ok_or_else(|| format!("--metrics-every wants a positive number, got {raw}"))?;
            }
            "--shards" => {
                let raw = value(&mut i)?;
                cli.shards = Some(
                    raw.parse::<u16>()
                        .map_err(|_| format!("--shards wants a small integer, got {raw}"))?,
                );
            }
            "--jobs" | "-j" => {
                let raw = value(&mut i)?;
                cli.jobs = Some(
                    raw.parse::<usize>()
                        .ok()
                        .filter(|j| *j > 0)
                        .ok_or_else(|| format!("--jobs wants a positive integer, got {raw}"))?,
                );
            }
            _ if arg.starts_with('-') => return Err(format!("unknown flag {arg}")),
            _ if cli.spec_path.is_none() => cli.spec_path = Some(arg.to_string()),
            _ => return Err(format!("unexpected extra argument {arg}")),
        }
        i += 1;
    }
    Ok(cli)
}

fn run(cli: Cli) -> Result<(), String> {
    if cli.print_default {
        let json = serde_json::to_string_pretty(&default_spec())
            .map_err(|e| format!("cannot serialize default spec: {e}"))?;
        println!("{json}");
        return Ok(());
    }
    let Some(path) = &cli.spec_path else {
        return Err(USAGE.to_string());
    };

    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut spec: RunSpec =
        serde_json::from_str(&raw).map_err(|e| format!("invalid scenario {path}: {e}"))?;
    if let Some(shards) = cli.shards {
        spec.shards = Some(shards);
    }
    if cli.trace_sample > 1 && cli.trace_format != TraceFormat::Chrome {
        return Err("--trace-sample only applies to --trace-format chrome".to_string());
    }

    // Attach requested observability before the run starts.
    let mut jsonl_tracer: Option<Arc<JsonlTracer<BufWriter<File>>>> = None;
    let mut chrome_tracer: Option<Arc<ChromeTracer<BufWriter<File>>>> = None;
    if let Some(out) = &cli.trace_out {
        let file =
            File::create(out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
        match cli.trace_format {
            TraceFormat::Jsonl => {
                jsonl_tracer = Some(Arc::new(JsonlTracer::new(BufWriter::new(file))));
            }
            TraceFormat::Chrome => {
                chrome_tracer = Some(Arc::new(ChromeTracer::with_sampling(
                    BufWriter::new(file),
                    cli.trace_sample,
                )));
            }
        }
    }
    let recorder = cli.flight_recorder.as_ref().map(|path| {
        Arc::new(FlightRecorder::with_output(
            FLIGHT_RECORDER_DEFAULT_CAPACITY,
            path.clone(),
        ))
    });
    let inst = Instruments {
        observer: jsonl_tracer
            .clone()
            .map(|t| t as _)
            .or_else(|| chrome_tracer.clone().map(|t| t as _)),
        metrics_every: cli
            .metrics_out
            .is_some()
            .then(|| SimDuration::from_micros((cli.metrics_every_s * 1e6) as u64)),
        progress: cli.progress,
        profile: cli.profile_out.is_some(),
        flight_recorder: recorder,
        ..Instruments::default()
    };

    eprintln!(
        "running {} nodes for {:.0} s (seed {}) ...",
        spec.sim.placement.node_count(),
        spec.duration.as_secs_f64(),
        spec.sim.seed
    );
    // A single scenario is one cell, but it rides the same executor path
    // (pool + cache + panic isolation) as the experiments harness, so both
    // binaries exercise identical machinery.
    let run_result = execute_cell("dophy-run", spec, inst, resolve_jobs(cli.jobs, 1));
    // Close the trace even when the run failed: a truncated Chrome array
    // is unreadable, and a partial trace of a crashed run is exactly when
    // you want the file to open.
    if let Some(tracer) = &chrome_tracer {
        tracer.finish();
    }
    let out = run_result?;

    if let Some(tracer) = &jsonl_tracer {
        tracer.flush();
        if tracer.io_errors() > 0 {
            return Err(format!(
                "{} write errors on the trace stream",
                tracer.io_errors()
            ));
        }
        eprintln!(
            "trace: {} events -> {}",
            tracer.lines_written(),
            cli.trace_out.as_deref().unwrap_or(Path::new("?")).display()
        );
    }
    if let Some(tracer) = &chrome_tracer {
        if tracer.io_errors() > 0 {
            return Err(format!(
                "{} write errors on the trace stream",
                tracer.io_errors()
            ));
        }
        eprintln!(
            "trace: {} chrome events -> {}",
            tracer.events_written(),
            cli.trace_out.as_deref().unwrap_or(Path::new("?")).display()
        );
    }
    if let Some(path) = &cli.profile_out {
        let report = out
            .profile
            .as_ref()
            .ok_or_else(|| "profiler produced no report".to_string())?;
        let json = serde_json::to_string_pretty(report)
            .map_err(|e| format!("cannot serialize profile: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "profile: {} subsystems -> {}",
            report.subsystems.len(),
            path.display()
        );
    }
    if let Some(out_path) = &cli.metrics_out {
        let json = serde_json::to_string_pretty(&out.metrics)
            .map_err(|e| format!("cannot serialize metrics: {e}"))?;
        std::fs::write(out_path, json)
            .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
        eprintln!(
            "metrics: {} snapshots -> {}",
            out.metrics.len(),
            out_path.display()
        );
    }
    let t = &out.telemetry;
    eprintln!(
        "telemetry: {} events in {:.2} s wall ({:.0} ev/s, sim/wall {:.0}x)",
        t.events_processed, t.wall_seconds, t.events_per_sec, t.sim_wall_ratio
    );
    if let Err(e) = telemetry::write_bench_file(Path::new("target/BENCH_telemetry.json")) {
        eprintln!("warning: could not write target/BENCH_telemetry.json: {e}");
    }

    // `--estimator` picks which backend's snapshot is reported; all
    // backends ran inside the (cached) simulation, so switching backends
    // never re-runs or invalidates anything.
    let selected = match cli.estimator {
        EstimatorKind::InBand => &out.dophy,
        EstimatorKind::Minc => &out.minc,
        EstimatorKind::SparseL1 => &out.sparse_l1,
    };
    let mut links: Vec<LinkRow> = selected
        .iter()
        .map(|(&(src, dst), &loss)| LinkRow {
            src,
            dst,
            estimated_loss: loss,
            true_loss: out.truth.get(&(src, dst)).copied(),
        })
        .collect();
    links.sort_by_key(|l| (l.src, l.dst));

    let results = Results {
        delivered_packets: out.overhead.packets,
        delivery_ratio: out.delivery_ratio,
        decode_success: out.decode.success_ratio(),
        packets_quarantined: out.decode.quarantined(),
        stream_bytes_per_packet: out.overhead.mean_stream_bytes(),
        measurement_bytes_per_packet: out.overhead.mean_measurement_bytes(),
        dissemination_bytes: out.dissemination_bytes,
        model_refreshes: out.refreshes,
        parent_changes_per_node_hour: out.churn.changes_per_node_hour,
        dophy_mae: out.score_scheme(&out.dophy).mae,
        traditional_em_mae: out.score_scheme(&out.em).mae,
        estimator: cli.estimator.to_string(),
        estimator_mae: out.score_scheme(selected).mae,
        faults: out.faults,
        links,
    };

    if cli.text {
        // Also produce the operator-facing health report from a dedicated
        // run of the same scenario (run_scenario consumes its engine),
        // on whichever engine the spec selects.
        let shared = match spec.shards.unwrap_or(0) {
            0 => {
                let (mut engine, shared) = build_simulation(&spec.sim, &spec.dophy);
                engine.start();
                engine.run_for(spec.duration);
                shared
            }
            shards => {
                let (mut engine, shared) = build_sharded_simulation(&spec.sim, &spec.dophy, shards);
                engine.start();
                engine.run_for(spec.duration);
                shared
            }
        };
        let health = NetworkHealthReport::generate(
            &shared.lock(),
            SimTime::ZERO + spec.duration,
            &DiagnosisConfig {
                max_attempts: spec.sim.mac.max_attempts,
                min_samples: spec.min_est_samples,
                ..DiagnosisConfig::default()
            },
        );
        println!("{}", health.render(10));
        println!("delivered packets        : {}", results.delivered_packets);
        println!("delivery ratio           : {:.4}", results.delivery_ratio);
        println!("decode success           : {:.4}", results.decode_success);
        println!("packets quarantined      : {}", results.packets_quarantined);
        if let Some(f) = &results.faults {
            println!(
                "faults injected          : {} frames corrupted ({} bit flips, \
                 {} truncations, {} header hits), {} destroyed, {} dissemination drops",
                f.injection.frames_corrupted,
                f.injection.bit_flips,
                f.injection.truncations,
                f.injection.header_hits,
                f.frames_destroyed,
                f.dissemination_drops
            );
        }
        println!(
            "stream / measurement     : {:.2} / {:.2} B per packet",
            results.stream_bytes_per_packet, results.measurement_bytes_per_packet
        );
        println!(
            "dissemination            : {} B over {} refreshes",
            results.dissemination_bytes, results.model_refreshes
        );
        println!(
            "routing churn            : {:.2} parent changes/node/hour",
            results.parent_changes_per_node_hour
        );
        println!("dophy MAE                : {:.4}", results.dophy_mae);
        println!(
            "traditional EM MAE       : {:.4}",
            results.traditional_em_mae
        );
        println!(
            "estimator ({})      : MAE {:.4}",
            results.estimator, results.estimator_mae
        );
        // Worst links table.
        let mut by_loss: BTreeMap<u64, &LinkRow> = BTreeMap::new();
        for l in &results.links {
            by_loss.insert((l.estimated_loss * 1e9) as u64, l);
        }
        println!("\nworst links (estimated):");
        for (_, l) in by_loss.iter().rev().take(10) {
            println!(
                "  n{}->n{}: est {:.3} true {}",
                l.src,
                l.dst,
                l.estimated_loss,
                l.true_loss
                    .map(|t| format!("{t:.3}"))
                    .unwrap_or_else(|| "-".into())
            );
        }
    } else {
        let json = serde_json::to_string_pretty(&results)
            .map_err(|e| format!("cannot serialize results: {e}"))?;
        println!("{json}");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            if !e.starts_with("usage:") {
                eprintln!("{USAGE}");
            }
            std::process::exit(2);
        }
    };
    if let Err(e) = run(cli) {
        if e.starts_with("usage:") {
            eprintln!("{e}");
            std::process::exit(2);
        }
        eprintln!("dophy-run: {e}");
        std::process::exit(1);
    }
}
