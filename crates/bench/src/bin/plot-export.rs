//! Converts saved experiment JSON into gnuplot-ready artifacts.
//!
//! ```text
//! plot-export [dir]      # default: target/experiments
//! ```
//!
//! For every `<id>.json` in the directory, writes `<id>.dat` (whitespace
//! table, one column per series, `?` for gaps) and `<id>.gp` (a gnuplot
//! script producing `<id>.png`). Render everything with:
//!
//! ```text
//! cd target/experiments && for f in *.gp; do gnuplot "$f"; done
//! ```

use dophy_bench::FigureResult;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn export(fig: &FigureResult, dir: &Path) -> std::io::Result<(PathBuf, PathBuf)> {
    // Union of x values.
    let mut xs: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

    let mut dat = String::new();
    let _ = write!(dat, "# {}\n# x", fig.title);
    for s in &fig.series {
        let _ = write!(dat, " \"{}\"", s.name.replace(' ', "_"));
    }
    dat.push('\n');
    for &x in &xs {
        let _ = write!(dat, "{x}");
        for s in &fig.series {
            match s.y_at(x) {
                Some(y) => {
                    let _ = write!(dat, " {y}");
                }
                None => dat.push_str(" ?"),
            }
        }
        dat.push('\n');
    }
    let dat_path = dir.join(format!("{}.dat", fig.id));
    std::fs::write(&dat_path, dat)?;

    let mut gp = String::new();
    let _ = writeln!(gp, "set terminal pngcairo size 900,600 enhanced");
    let _ = writeln!(gp, "set output '{}.png'", fig.id);
    let _ = writeln!(gp, "set title {:?}", fig.title);
    let _ = writeln!(gp, "set xlabel {:?}", fig.x_label);
    let _ = writeln!(gp, "set ylabel {:?}", fig.y_label);
    let _ = writeln!(gp, "set key outside right");
    let _ = writeln!(gp, "set datafile missing '?'");
    let _ = writeln!(gp, "set grid");
    gp.push_str("plot ");
    let clauses: Vec<String> = fig
        .series
        .iter()
        .enumerate()
        .map(|(i, s)| {
            format!(
                "'{}.dat' using 1:{} with linespoints title {:?}",
                fig.id,
                i + 2,
                s.name
            )
        })
        .collect();
    gp.push_str(&clauses.join(", \\\n     "));
    gp.push('\n');
    let gp_path = dir.join(format!("{}.gp", fig.id));
    std::fs::write(&gp_path, gp)?;
    Ok((dat_path, gp_path))
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/experiments"));
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!(
                "cannot read {}: {e} (run the experiments first)",
                dir.display()
            );
            std::process::exit(1);
        }
    };
    let mut count = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let raw = match std::fs::read_to_string(&path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("skip {}: {e}", path.display());
                continue;
            }
        };
        let fig: FigureResult = match serde_json::from_str(&raw) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("skip {} (not a FigureResult): {e}", path.display());
                continue;
            }
        };
        match export(&fig, &dir) {
            Ok((dat, gp)) => {
                count += 1;
                eprintln!("wrote {} and {}", dat.display(), gp.display());
            }
            Err(e) => eprintln!("failed {}: {e}", fig.id),
        }
    }
    eprintln!(
        "{count} figures exported; render with: cd {} && for f in *.gp; do gnuplot \"$f\"; done",
        dir.display()
    );
}
