//! Experiment result containers, pretty-printing, and JSON persistence.
//!
//! Every figure/table produces a [`FigureResult`]: named series of `(x, y)`
//! points plus free-form notes. The harness prints an aligned text table
//! (the "same rows/series the paper reports") and writes machine-readable
//! JSON under `target/experiments/`.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::PathBuf;

/// One plotted series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }

    /// y value at the given x, if present (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }
}

/// A reproduced figure or table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureResult {
    /// Experiment id (e.g. `fig3-encoding-overhead`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis meaning.
    pub x_label: String,
    /// Y-axis meaning.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form observations recorded by the experiment.
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Creates an empty result shell.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Adds a note line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        // Collect the union of x values (sorted).
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("x values are finite"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut header = format!("{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(header, " {:>18}", truncate(&s.name, 18));
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for &x in &xs {
            let _ = write!(out, "{x:>14.4}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, " {y:>18.5}");
                    }
                    None => {
                        let _ = write!(out, " {:>18}", "-");
                    }
                }
            }
            out.push('\n');
        }
        let _ = writeln!(out, "  (y = {})", self.y_label);
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Writes JSON to `target/experiments/<id>.json`; returns the path.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(
            &path,
            serde_json::to_string_pretty(self).expect("serializable"),
        )?;
        Ok(path)
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        s.chars().take(n - 1).collect::<String>() + "…"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_union_of_x() {
        let mut f = FigureResult::new("t", "Title", "x", "y");
        f.push_series(Series::new("a", vec![(1.0, 10.0), (2.0, 20.0)]));
        f.push_series(Series::new("b", vec![(2.0, 5.0), (3.0, 6.0)]));
        let text = f.render();
        assert!(text.contains("Title"));
        // x=1 has a gap for series b; x=3 for series a.
        let lines: Vec<&str> = text.lines().collect();
        let row1 = lines
            .iter()
            .find(|l| l.trim_start().starts_with("1.0"))
            .unwrap();
        assert!(row1.contains('-'));
        assert_eq!(
            text.lines().filter(|l| l.contains(".0000")).count(),
            3,
            "three x rows"
        );
    }

    #[test]
    fn y_at_exact_match() {
        let s = Series::new("a", vec![(1.0, 10.0)]);
        assert_eq!(s.y_at(1.0), Some(10.0));
        assert_eq!(s.y_at(1.5), None);
    }

    #[test]
    fn json_round_trip() {
        let mut f = FigureResult::new("id", "T", "x", "y");
        f.push_series(Series::new("s", vec![(0.0, 1.0)]));
        f.note("hello");
        let j = serde_json::to_string(&f).unwrap();
        let back: FigureResult = serde_json::from_str(&j).unwrap();
        assert_eq!(back.id, "id");
        assert_eq!(back.series[0].points, vec![(0.0, 1.0)]);
        assert_eq!(back.notes, vec!["hello"]);
    }

    #[test]
    fn truncate_long_names() {
        assert_eq!(truncate("short", 18), "short");
        let long = "a-very-long-series-name-indeed";
        let t = truncate(long, 18);
        assert!(t.chars().count() <= 18);
        assert!(t.ends_with('…'));
    }
}
