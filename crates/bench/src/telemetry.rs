//! Run telemetry: wall-clock instrumentation of the simulation hot loop.
//!
//! Every [`crate::run_scenario`] call measures how fast the engine chewed
//! through its event queue and records a [`RunTelemetry`]. Harness
//! binaries collect these (via [`record_run`]) and export them to
//! `BENCH_telemetry.json` with [`write_bench_file`], giving perf work a
//! baseline trajectory across commits. [`ProgressMeter`] prints the
//! live heartbeat behind `dophy-run --progress`.

use dophy_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::Path;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Wall-clock performance of one finished simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunTelemetry {
    /// Events executed by the engine.
    pub events_processed: u64,
    /// Wall-clock seconds spent inside the simulation loop.
    pub wall_seconds: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Simulated seconds covered.
    pub sim_seconds: f64,
    /// Simulated seconds per wall-clock second (how much faster than
    /// real time the simulation ran).
    pub sim_wall_ratio: f64,
    /// Process peak resident set size (bytes) when the run finished, 0
    /// where the platform offers no cheap probe. This is a *process-wide*
    /// high-water mark: under the pooled executor it reflects every run
    /// completed so far, so within one export only the largest scenario's
    /// figure is a true per-run peak (fig14-scale orders its cells
    /// smallest-first for exactly this reason).
    pub peak_rss_bytes: u64,
}

impl RunTelemetry {
    /// Builds telemetry from raw loop measurements, stamping the current
    /// process peak RSS.
    #[must_use]
    pub fn from_measurement(events_processed: u64, wall_seconds: f64, sim_seconds: f64) -> Self {
        let wall = wall_seconds.max(1e-9);
        Self {
            events_processed,
            wall_seconds,
            events_per_sec: events_processed as f64 / wall,
            sim_seconds,
            sim_wall_ratio: sim_seconds / wall,
            peak_rss_bytes: peak_rss_bytes(),
        }
    }
}

/// Reads the process peak resident set size from `/proc/self/status`
/// (`VmHWM`, kiB). Returns 0 off Linux or when the probe fails — callers
/// treat 0 as "unknown", never as "no memory used".
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kib: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kib * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// One labelled telemetry record for the `BENCH_telemetry.json` export.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Human-readable run label (`<nodes>n-<sim secs>s-seed<seed>`).
    pub label: String,
    /// The measured telemetry.
    pub telemetry: RunTelemetry,
}

fn collector() -> &'static Mutex<Vec<RunRecord>> {
    static RUNS: OnceLock<Mutex<Vec<RunRecord>>> = OnceLock::new();
    RUNS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records one run's telemetry into the process-wide collector.
pub fn record_run(label: impl Into<String>, telemetry: RunTelemetry) {
    collector()
        .lock()
        .expect("telemetry collector poisoned")
        .push(RunRecord {
            label: label.into(),
            telemetry,
        });
}

/// Snapshot of everything recorded so far (in recording order).
#[must_use]
pub fn recorded_runs() -> Vec<RunRecord> {
    collector()
        .lock()
        .expect("telemetry collector poisoned")
        .clone()
}

/// Writes all recorded runs as pretty JSON to `path`
/// (conventionally `target/BENCH_telemetry.json`).
///
/// Records are sorted by label: with the pooled executor the *recording*
/// order depends on worker scheduling, so the export imposes a stable
/// order instead.
pub fn write_bench_file(path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut runs = recorded_runs();
    runs.sort_by(|a, b| a.label.cmp(&b.label));
    let json = serde_json::to_string_pretty(&runs)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json)
}

/// Live heartbeat printer for long runs (`dophy-run --progress`).
///
/// Prints to stderr so machine-readable stdout stays clean.
pub struct ProgressMeter {
    t0: Instant,
    total_sim_s: f64,
}

impl ProgressMeter {
    /// Meter for a run covering `total_sim` of simulated time.
    #[must_use]
    pub fn new(total_sim: SimDuration) -> Self {
        Self {
            t0: Instant::now(),
            total_sim_s: total_sim.as_secs_f64().max(1e-9),
        }
    }

    /// Emits one heartbeat line: % complete, events/sec, sim-vs-wall.
    pub fn tick(&self, sim_elapsed: SimDuration, events_processed: u64) {
        let wall = self.t0.elapsed().as_secs_f64().max(1e-9);
        let sim_s = sim_elapsed.as_secs_f64();
        let pct = 100.0 * sim_s / self.total_sim_s;
        let mut err = std::io::stderr().lock();
        let _ = writeln!(
            err,
            "[progress] {pct:5.1}% | {events_processed} events | {:.0} ev/s | sim/wall {:.0}x",
            events_processed as f64 / wall,
            sim_s / wall,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_derives_rates() {
        let t = RunTelemetry::from_measurement(1_000_000, 2.0, 1800.0);
        assert_eq!(t.events_processed, 1_000_000);
        assert!((t.events_per_sec - 500_000.0).abs() < 1e-6);
        assert!((t.sim_wall_ratio - 900.0).abs() < 1e-6);
        #[cfg(target_os = "linux")]
        assert!(t.peak_rss_bytes > 0, "VmHWM probe should work on Linux");
    }

    #[test]
    fn telemetry_json_round_trips() {
        let t = RunTelemetry::from_measurement(10, 0.5, 60.0);
        let j = serde_json::to_string(&t).unwrap();
        let back: RunTelemetry = serde_json::from_str(&j).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn collector_accumulates_and_exports() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // The collector is process-wide and other tests in this binary
        // record into it too, so tag this test's record with a unique
        // label and only assert on records we created. The export dir is
        // keyed by pid + counter so concurrent test processes (or repeat
        // in-process runs) never share a path.
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let tag = format!(
            "telemetry-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        );
        record_run(&tag, RunTelemetry::from_measurement(5, 1.0, 10.0));
        let runs = recorded_runs();
        assert_eq!(
            runs.iter().filter(|r| r.label == tag).count(),
            1,
            "exactly the record this test created"
        );
        let dir = std::env::temp_dir().join(format!("dophy-{tag}"));
        let path = dir.join("BENCH_telemetry.json");
        write_bench_file(&path).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        let back: Vec<RunRecord> = serde_json::from_str(&raw).unwrap();
        assert!(back.iter().any(|r| r.label == tag));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
