//! Scenario runner: executes a full Dophy simulation and extracts
//! everything the figures need — estimates (Dophy MLE, naive, traditional
//! EM/log-LS), ground truth, overhead, churn, and periodic checkpoints.
//!
//! The traditional-tomography baseline is driven exactly the way such
//! systems are deployed: the run is divided into attribution windows; at
//! each window start the current routing tree is snapshotted (the periodic
//! topology report a sink would collect), and the window's per-origin
//! sent/delivered counts are attributed to the snapshot path. Under dynamic
//! routing this attribution is exactly what goes stale.

use crate::telemetry::{record_run, ProgressMeter, RunTelemetry};
use dophy::baseline::{
    survival_to_transmission_loss, PathMeasurement, TraditionalConfig, TraditionalTomography,
};
use dophy::infer::{Estimator, Evidence, EvidenceLog, SnapshotQuery};
use dophy::metrics::{score, AccuracyReport};
use dophy::protocol::{
    build_sharded_simulation_with_faults, build_simulation_with_faults, DecodeStats, DophyConfig,
    DophyNode, OverheadStats, SinkState,
};
use dophy::telemetry::sample_metrics;
use dophy_routing::{churn_report, ChurnReport};
use dophy_sim::obs::{FlightRecorder, MetricsRegistry, MetricsSnapshot, MultiObserver, Observer};
use dophy_sim::{
    FaultConfig, FaultInjection, FaultPlan, NodeId, ProfileReport, Profiler, SimConfig, SimDriver,
    SimDuration, SimTime, Topology, Trace,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Directed link key.
pub type LinkKey = (u32, u32);

/// Optional per-origin snapshot path used for baseline attribution.
type SnapshotPaths = Vec<Option<Vec<LinkKey>>>;

/// Runner parameters beyond the stack configs.
///
/// `Hash` is stable across runs and platforms (floats hash their raw
/// bits), so the executor can content-address a spec: two experiments
/// that build byte-equal `RunSpec`s share one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Hash, Serialize, Deserialize)]
pub struct RunSpec {
    /// Network configuration.
    pub sim: SimConfig,
    /// Dophy stack configuration.
    pub dophy: DophyConfig,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Baseline path-attribution window (also the checkpoint cadence).
    pub window: SimDuration,
    /// Links need this many physical data transmissions to enter the
    /// ground-truth map.
    pub min_truth_tx: u64,
    /// Estimates need this many observations to be reported.
    pub min_est_samples: u64,
    /// Record per-window accuracy checkpoints (fig6); costs some CPU.
    pub checkpoints: bool,
    /// Optional deterministic fault injection (frame corruption, crashes,
    /// dissemination faults). `None` = unfaulted run, bit-identical to
    /// specs predating this field (a missing `faults` key in JSON
    /// deserializes to `None`, so old scenario files keep working).
    pub faults: Option<FaultConfig>,
    /// Engine selection: `None` or `Some(0)` (a missing key in legacy
    /// JSON deserializes to `None`) runs the single-loop engine,
    /// bit-identical to specs predating this field. `Some(n)` for `n > 0`
    /// runs the sharded multi-core engine with `n` spatial shards.
    /// Sharded results are byte-identical across shard *and* thread
    /// counts, but are a different (equally valid) sample path than the
    /// single-loop engine's — so the value participates in the spec hash.
    pub shards: Option<u16>,
    /// Whether to keep the per-packet ground-truth hop log
    /// ([`RunOutput::true_hops`]). `None` (and a missing key in legacy
    /// JSON) means keep it — bit-identical simulation either way, it is
    /// a pure recorder — but the log grows with every delivered packet
    /// and dominates peak RSS at 10k-node scale, so large-scale cells
    /// set `Some(false)`. Only the fig3 re-encoding figure reads it.
    pub keep_true_hops: Option<bool>,
}

impl RunSpec {
    /// Canonical spec used by most experiments.
    pub fn new(sim: SimConfig, dophy: DophyConfig, duration: SimDuration) -> Self {
        Self {
            sim,
            dophy,
            duration,
            window: SimDuration::from_secs(60),
            min_truth_tx: 30,
            min_est_samples: 10,
            checkpoints: false,
            faults: None,
            shards: None,
            keep_true_hops: None,
        }
    }

    /// The same spec on the sharded engine with `shards` spatial shards.
    pub fn with_shards(self, shards: u16) -> Self {
        Self {
            shards: Some(shards),
            ..self
        }
    }

    /// The same spec without the per-packet ground-truth hop log (see
    /// [`RunSpec::keep_true_hops`]). For scale cells whose folds never
    /// read [`RunOutput::true_hops`]; the simulation itself is
    /// bit-identical.
    pub fn without_true_hops(self) -> Self {
        Self {
            keep_true_hops: Some(false),
            ..self
        }
    }
}

/// What the fault layer did during a faulted run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Injection counters from the [`dophy_sim::FaultPlan`].
    pub injection: FaultInjection,
    /// Frames destroyed outright (unparseable after corruption).
    pub frames_destroyed: u64,
    /// Model-dissemination floods suppressed by injected faults.
    pub dissemination_drops: u64,
}

/// Accuracy trajectory point (fig6).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Simulated seconds elapsed.
    pub time_s: f64,
    /// Packets delivered so far.
    pub delivered: u64,
    /// Dophy MLE mean absolute error.
    pub dophy_mae: f64,
    /// Naive-estimator MAE.
    pub naive_mae: f64,
    /// Traditional EM MAE.
    pub em_mae: f64,
    /// Traditional log-LS MAE.
    pub ls_mae: f64,
    /// Dophy link coverage at this point.
    pub dophy_coverage: f64,
}

/// Optional observability instrumentation attached to a run.
///
/// Everything here is read-only with respect to the simulation, so an
/// instrumented run produces bit-identical results to a bare one (the
/// integration tests enforce this).
#[derive(Default)]
pub struct Instruments {
    /// Structured-event observer installed on the engine before start.
    pub observer: Option<Arc<dyn Observer>>,
    /// Sample the metrics registry on this sim-time cadence (also
    /// snapshotted once at the end of the run when set).
    pub metrics_every: Option<SimDuration>,
    /// Print a progress heartbeat to stderr after every window.
    pub progress: bool,
    /// Install a hot-path self-profiler and export its report in
    /// [`RunOutput::profile`]. Wall-time only; never touches sim state.
    pub profile: bool,
    /// Crash flight recorder: retains the last N observer events so the
    /// executor can dump a postmortem if the run panics. Composed *before*
    /// `observer` in the fan-out, so the ring always holds the freshest
    /// events even if a downstream observer is the thing that panics.
    pub flight_recorder: Option<Arc<FlightRecorder>>,
    /// Evidence capture: attach an [`dophy::infer::EvidenceLog`] writing
    /// into this buffer to the sink's inference fan-out. The log is a pure
    /// recorder (estimates nothing, never snapshotted), so capture does not
    /// perturb the run; `dophy-serve`'s firehose uses it to stream a run's
    /// typed evidence into the tomography service.
    pub evidence: Option<Arc<Mutex<Vec<Evidence>>>>,
}

/// Everything a finished run yields.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Ground truth per-transmission loss (links with enough traffic).
    pub truth: HashMap<LinkKey, f64>,
    /// Dophy MLE loss estimates.
    pub dophy: HashMap<LinkKey, f64>,
    /// Naive (moment) loss estimates from the same observations.
    pub naive: HashMap<LinkKey, f64>,
    /// Conjugate Bayesian loss estimates from the same observations.
    pub bayes: HashMap<LinkKey, f64>,
    /// MINC-dual backend estimates (end-to-end evidence; see
    /// `dophy::infer::minc`).
    pub minc: HashMap<LinkKey, f64>,
    /// Sparse-L1 backend estimates (end-to-end evidence; see
    /// `dophy::infer::sparse`).
    pub sparse_l1: HashMap<LinkKey, f64>,
    /// Traditional EM estimates (converted to per-transmission loss).
    pub em: HashMap<LinkKey, f64>,
    /// Traditional log-LS estimates (converted).
    pub ls: HashMap<LinkKey, f64>,
    /// Decode statistics.
    pub decode: DecodeStats,
    /// Overhead statistics.
    pub overhead: OverheadStats,
    /// Model-dissemination bytes charged.
    pub dissemination_bytes: u64,
    /// Model refreshes performed.
    pub refreshes: u64,
    /// End-to-end delivery ratio.
    pub delivery_ratio: f64,
    /// Routing churn metrics.
    pub churn: ChurnReport,
    /// Ground-truth hop logs of delivered packets (origin, seq) → hops.
    pub true_hops: HashMap<(u32, u32), dophy::protocol::TrueHops>,
    /// Per-link ground truth transmission counts (for re-encoding figures).
    pub node_count: usize,
    /// Largest candidate-table size (fixed-width id field sizing).
    pub max_degree: usize,
    /// MAC retry budget.
    pub max_attempts: u16,
    /// Accuracy trajectory (when `checkpoints` was set).
    pub checkpoints: Vec<Checkpoint>,
    /// Metrics time series (when [`Instruments::metrics_every`] was set).
    pub metrics: Vec<MetricsSnapshot>,
    /// Fault-injection summary (when [`RunSpec::faults`] was set).
    pub faults: Option<FaultSummary>,
    /// Hot-path profile (when [`Instruments::profile`] was set). Wall-clock
    /// values — excluded from determinism fingerprints.
    pub profile: Option<ProfileReport>,
    /// Wall-clock performance of the simulation loop.
    pub telemetry: RunTelemetry,
}

impl RunOutput {
    /// Scores a scheme's estimates against this run's truth.
    pub fn score_scheme(&self, estimates: &HashMap<LinkKey, f64>) -> AccuracyReport {
        score(estimates, &self.truth)
    }
}

/// Follows parents from `origin` to the sink; `None` on loops or missing
/// routes. Returns the link list origin→sink.
fn current_path<E: SimDriver<DophyNode>>(engine: &E, origin: NodeId) -> Option<Vec<LinkKey>> {
    let n = engine.topology().node_count();
    let mut cur = origin;
    let mut path = Vec::new();
    for _ in 0..n {
        if cur == NodeId::SINK {
            return Some(path);
        }
        // Snapshot through the routing layer's time-indexed parent view —
        // at `t = now` this is exactly `next_hop()`, and the same call can
        // reconstruct any past window's tree.
        let next = engine.protocol(cur).router().parent_as_of(engine.now())?;
        path.push((cur.0, next.0));
        cur = next;
    }
    None // loop
}

fn truth_map(topo: &Topology, trace: &Trace, min_tx: u64) -> HashMap<LinkKey, f64> {
    let mut truth = HashMap::new();
    for (i, l) in topo.links().iter().enumerate() {
        let t = trace.links()[i];
        if t.data_tx >= min_tx {
            if let Some(loss) = t.empirical_loss() {
                truth.insert((l.src.0, l.dst.0), loss);
            }
        }
    }
    truth
}

/// Attributes one origin's window counts to a baseline measurement.
///
/// A packet sent near the end of window *k* often arrives in window
/// *k+1*, so a window can legitimately see `delivered > sent` (the
/// surplus belongs to the previous window's sends) — and conversely,
/// late-arriving packets must not be discarded as if they were lost.
/// `carry` holds deliveries not yet attributed; the return value is
/// `(delivered_to_record, carry_for_next_window)`.
fn attribute_window(sent: u64, delivered: u64, carry: u64) -> (u64, u64) {
    let available = delivered + carry;
    let used = available.min(sent);
    (used, available - used)
}

fn estimates_to_loss(v: Vec<((u32, u32), dophy::LossEstimate)>) -> HashMap<LinkKey, f64> {
    v.into_iter().map(|(k, e)| (k, e.loss)).collect()
}

fn convert_survival(map: HashMap<LinkKey, f64>, r: u16) -> HashMap<LinkKey, f64> {
    map.into_iter()
        .map(|(k, sigma)| (k, survival_to_transmission_loss(sigma, r)))
        .collect()
}

/// Runs a scenario to completion without instrumentation.
pub fn run_scenario(spec: &RunSpec) -> RunOutput {
    run_scenario_with(spec, Instruments::default())
}

/// Runs a scenario to completion with optional observability attached.
///
/// With [`RunSpec::shards`] non-zero the run is driven by the sharded
/// multi-core engine; everything downstream (baseline attribution,
/// checkpoints, metrics, outputs) is engine-agnostic. Profiling works on
/// both engines: on the sharded one each worker thread records into a
/// shard-local profiler and the report aggregates wall time across
/// threads (so subsystem totals can exceed the run's wall clock — they
/// are CPU-time-like, not elapsed-time-like).
pub fn run_scenario_with(spec: &RunSpec, inst: Instruments) -> RunOutput {
    let shards = spec.shards.unwrap_or(0);
    let profiler = inst.profile.then(|| Arc::new(Profiler::new()));
    if shards == 0 {
        let (mut engine, shared, fault_plan) =
            build_simulation_with_faults(&spec.sim, &spec.dophy, spec.faults.as_ref());
        if let Some(prof) = &profiler {
            engine.set_profiler(Arc::clone(prof));
        }
        drive(spec, inst, engine, shared, fault_plan, profiler)
    } else {
        let (mut engine, shared, fault_plan) = build_sharded_simulation_with_faults(
            &spec.sim,
            &spec.dophy,
            spec.faults.as_ref(),
            shards,
        );
        if let Some(prof) = &profiler {
            engine.set_profiler(Arc::clone(prof));
        }
        drive(spec, inst, engine, shared, fault_plan, profiler)
    }
}

/// Engine-agnostic body of [`run_scenario_with`]: drives `engine` through
/// the spec's windows and extracts every output.
fn drive<E: SimDriver<DophyNode>>(
    spec: &RunSpec,
    inst: Instruments,
    mut engine: E,
    shared: Arc<Mutex<SinkState>>,
    fault_plan: Option<Arc<FaultPlan>>,
    profiler: Option<Arc<Profiler>>,
) -> RunOutput {
    // Flight recorder first in the chain: it must capture each event
    // before any other observer gets a chance to panic on it.
    let observer = match (inst.flight_recorder, inst.observer) {
        (Some(rec), Some(obs)) => {
            Some(
                Arc::new(MultiObserver::new(vec![rec as Arc<dyn Observer>, obs]))
                    as Arc<dyn Observer>,
            )
        }
        (Some(rec), None) => Some(rec as Arc<dyn Observer>),
        (None, obs) => obs,
    };
    if let Some(observer) = observer {
        engine.set_observer(observer);
    }
    if let Some(buffer) = inst.evidence {
        // Attached before start so the log sees the whole stream. Extra
        // backends observe after the built-ins and are never snapshotted,
        // so capture cannot perturb any output.
        shared
            .lock()
            .infer
            .attach(Box::new(EvidenceLog::with_handle(buffer)));
    }
    if spec.keep_true_hops == Some(false) {
        // Recorder gate only — the simulation is bit-identical with the
        // hop log off, it just never materializes the per-packet map.
        shared.lock().record_true_hops = false;
    }
    let mut registry = inst.metrics_every.map(|_| MetricsRegistry::new());
    let meter = inst.progress.then(|| ProgressMeter::new(spec.duration));
    let wall_start = Instant::now();
    engine.start();

    let r = spec.sim.mac.max_attempts;
    let n = engine.topology().node_count();
    let mut tomo = TraditionalTomography::new();
    let tomo_cfg = TraditionalConfig::default();
    let mut prev_sent = vec![0u64; n];
    let mut prev_delivered = vec![0u64; n];
    // Deliveries seen in a window but not yet attributed (packets in
    // flight across a window boundary); see `attribute_window`.
    let mut carry = vec![0u64; n];
    let mut checkpoints = Vec::new();

    let mut elapsed = SimDuration::ZERO;
    while elapsed < spec.duration {
        // Snapshot the tree BEFORE the window: this is the attribution the
        // baseline will use for the window's packets.
        let paths: SnapshotPaths = (0..n)
            .map(|i| current_path(&engine, NodeId::from_index(i)))
            .collect();
        let step = spec.window.min(spec.duration - elapsed);
        match (&mut registry, inst.metrics_every) {
            (Some(reg), Some(every)) => {
                // Split the window so metrics are sampled on their own
                // cadence. Chunked run_until calls execute the exact same
                // event sequence as a single one, so instrumentation does
                // not change run behaviour.
                let mut done = SimDuration::ZERO;
                while done < step {
                    let sub = every.min(step - done);
                    engine.run_for(sub);
                    done = done + sub;
                    sample_metrics(reg, &engine, &shared.lock());
                    reg.snapshot(engine.now());
                }
            }
            _ => engine.run_for(step),
        }
        elapsed = elapsed + step;
        if let Some(meter) = &meter {
            meter.tick(elapsed, engine.events_processed());
        }

        {
            let mut s = shared.lock();
            for origin in 1..n {
                let sent = s.sent_per_origin[origin] - prev_sent[origin];
                let delivered = s.delivered_per_origin[origin] - prev_delivered[origin];
                prev_sent[origin] = s.sent_per_origin[origin];
                prev_delivered[origin] = s.delivered_per_origin[origin];
                if sent == 0 {
                    // Nothing to attribute against; keep the deliveries
                    // for the window that recorded their sends.
                    carry[origin] += delivered;
                    continue;
                }
                if let Some(path) = &paths[origin] {
                    if !path.is_empty() {
                        let (used, rest) = attribute_window(sent, delivered, carry[origin]);
                        carry[origin] = rest;
                        tomo.add(PathMeasurement {
                            path: path.clone(),
                            sent,
                            delivered: used,
                        });
                        // The same carry-corrected window tally, as typed
                        // evidence for the end-to-end inference backends
                        // (MINC, sparse-L1). The in-band backends ignore
                        // path outcomes, so feeding the stack here cannot
                        // perturb any in-band estimate.
                        s.infer.observe(&Evidence::PathOutcome {
                            at: SimTime::ZERO + elapsed,
                            origin: origin as u32,
                            path: path.clone(),
                            sent,
                            delivered: used,
                        });
                    }
                }
            }
        }

        if spec.checkpoints {
            let truth = truth_map(
                engine.topology(),
                &engine.trace_snapshot(),
                spec.min_truth_tx,
            );
            let s = shared.lock();
            let dophy_est = estimates_to_loss(s.infer.in_band.estimates(r, spec.min_est_samples));
            let naive_est =
                estimates_to_loss(s.infer.in_band.naive_estimates(spec.min_est_samples));
            let delivered: u64 = s.delivered_per_origin.iter().sum();
            drop(s);
            let em = convert_survival(tomo.estimate_em(&tomo_cfg), r);
            let ls = convert_survival(tomo.estimate_logls(&tomo_cfg), r);
            let sc = |m: &HashMap<LinkKey, f64>| score(m, &truth);
            let dophy_rep = sc(&dophy_est);
            checkpoints.push(Checkpoint {
                time_s: elapsed.as_secs_f64(),
                delivered,
                dophy_mae: dophy_rep.mae,
                naive_mae: sc(&naive_est).mae,
                em_mae: sc(&em).mae,
                ls_mae: sc(&ls).mae,
                dophy_coverage: dophy_rep.coverage(),
            });
        }
    }

    let telemetry = RunTelemetry::from_measurement(
        engine.events_processed(),
        wall_start.elapsed().as_secs_f64(),
        spec.duration.as_secs_f64(),
    );
    record_run(
        format!(
            "{}n-{}s-seed{}",
            engine.topology().node_count(),
            spec.duration.as_secs_f64() as u64,
            spec.sim.seed
        ),
        telemetry,
    );

    let truth = truth_map(
        engine.topology(),
        &engine.trace_snapshot(),
        spec.min_truth_tx,
    );
    let duration_t = SimTime::ZERO + spec.duration;
    let churn = {
        let logs: Vec<&[(SimTime, NodeId)]> = (1..n)
            .map(|i| engine.protocol(NodeId::from_index(i)).router().parent_log())
            .collect();
        churn_report(&logs, duration_t)
    };
    let max_degree = (0..n)
        .map(|i| engine.topology().neighbors(NodeId::from_index(i)).len())
        .max()
        .unwrap_or(1);

    let mut s = shared.lock();
    let dophy_est = estimates_to_loss(s.infer.in_band.estimates(r, spec.min_est_samples));
    let naive_est = estimates_to_loss(s.infer.in_band.naive_estimates(spec.min_est_samples));
    let bayes_est = estimates_to_loss(s.infer.bayes.estimates(spec.min_est_samples));
    let em = convert_survival(tomo.estimate_em(&tomo_cfg), r);
    let ls = convert_survival(tomo.estimate_logls(&tomo_cfg), r);
    // Bake-off backends solve at snapshot time from their accumulated
    // evidence; extracting them here is a pure read, so every pre-existing
    // output stays byte-identical.
    let q = SnapshotQuery {
        now: duration_t,
        r,
        min_samples: spec.min_est_samples,
    };
    let minc_est = estimates_to_loss(s.infer.minc.snapshot(&q));
    let sparse_est = estimates_to_loss(s.infer.sparse.snapshot(&q));
    // Move the hop log out instead of cloning it: at 10k-node scale the
    // clone alone would double the run's peak memory.
    let true_hops = std::mem::take(&mut s.true_hops);

    RunOutput {
        truth,
        dophy: dophy_est,
        naive: naive_est,
        bayes: bayes_est,
        minc: minc_est,
        sparse_l1: sparse_est,
        em,
        ls,
        decode: s.decode,
        overhead: s.overhead.clone(),
        dissemination_bytes: s.manager.dissemination_bytes,
        refreshes: s.manager.refreshes,
        delivery_ratio: s.total_delivery_ratio().unwrap_or(0.0),
        churn,
        true_hops,
        node_count: n,
        max_degree,
        max_attempts: r,
        checkpoints,
        metrics: registry
            .map(|reg| reg.series().to_vec())
            .unwrap_or_default(),
        faults: fault_plan.map(|plan| FaultSummary {
            injection: plan.injection(),
            frames_destroyed: s.corrupt_frame_drops,
            dissemination_drops: s.manager.dissemination_drops,
        }),
        profile: profiler.map(|p| p.report()),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dophy_sim::{LinkDynamics, MacConfig, Placement, RadioModel};

    fn quick_spec() -> RunSpec {
        let sim = SimConfig {
            placement: Placement::Grid {
                side: 4,
                spacing: 15.0,
            },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics: LinkDynamics::Static,
            seed: 3,
        };
        let dophy = DophyConfig {
            traffic_period: SimDuration::from_secs(2),
            warmup: SimDuration::from_secs(30),
            ..DophyConfig::default()
        };
        RunSpec {
            window: SimDuration::from_secs(60),
            checkpoints: true,
            ..RunSpec::new(sim, dophy, SimDuration::from_secs(600))
        }
    }

    #[test]
    fn full_run_produces_all_outputs() {
        let out = run_scenario(&quick_spec());
        assert!(out.overhead.packets > 300);
        assert!(!out.truth.is_empty());
        assert!(!out.dophy.is_empty());
        assert!(!out.em.is_empty());
        assert!(!out.ls.is_empty());
        assert!(out.delivery_ratio > 0.9);
        assert_eq!(out.checkpoints.len(), 10);
        // Dophy accuracy should be decent on a static grid.
        let rep = out.score_scheme(&out.dophy);
        assert!(rep.scored_links >= 5);
        assert!(rep.mae < 0.1, "dophy MAE {}", rep.mae);
    }

    #[test]
    fn dophy_beats_traditional_on_accuracy() {
        let out = run_scenario(&quick_spec());
        let d = out.score_scheme(&out.dophy).mae;
        let em = out.score_scheme(&out.em).mae;
        assert!(d < em, "Dophy MAE {d} should beat traditional EM MAE {em}");
    }

    #[test]
    fn checkpoints_show_convergence() {
        let out = run_scenario(&quick_spec());
        let first = out.checkpoints.iter().find(|c| c.dophy_mae > 0.0);
        let last = out.checkpoints.last().unwrap();
        if let Some(first) = first {
            assert!(
                last.dophy_mae <= first.dophy_mae + 0.02,
                "error should not grow: first {} last {}",
                first.dophy_mae,
                last.dophy_mae
            );
        }
        assert!(last.delivered > 0);
    }

    #[test]
    fn deterministic_runs() {
        let a = run_scenario(&quick_spec());
        let b = run_scenario(&quick_spec());
        assert_eq!(a.overhead.packets, b.overhead.packets);
        assert_eq!(a.decode, b.decode);
        assert_eq!(a.truth.len(), b.truth.len());
    }

    /// Dropping the hop log is a pure recorder gate: every other output
    /// is byte-identical, and the log itself stays empty.
    #[test]
    fn disabling_true_hops_does_not_perturb_the_run() {
        let with = run_scenario(&quick_spec());
        let without = run_scenario(&quick_spec().without_true_hops());
        assert!(!with.true_hops.is_empty(), "baseline must record hops");
        assert!(without.true_hops.is_empty(), "gate must drop the log");
        assert_eq!(with.overhead.packets, without.overhead.packets);
        assert_eq!(with.overhead.stream_bytes, without.overhead.stream_bytes);
        assert_eq!(with.decode, without.decode);
        assert_eq!(with.dophy, without.dophy);
        assert_eq!(with.truth, without.truth);
        assert_eq!(with.delivery_ratio, without.delivery_ratio);
    }

    #[test]
    fn attribute_window_carries_surplus() {
        // In-window delivery: everything attributes, nothing carries.
        assert_eq!(attribute_window(10, 9, 0), (9, 0));
        // A packet sent in window k delivered in k+1: window k records 9
        // of 10, the late delivery carries and tops up window k+1.
        assert_eq!(attribute_window(10, 11, 0), (10, 1));
        assert_eq!(attribute_window(10, 9, 1), (10, 0));
        // Carry never lets a window exceed its own sends.
        assert_eq!(attribute_window(3, 2, 7), (3, 6));
        // Lossless chain conservation: attributed + final carry equals
        // total deliveries.
        let windows = [(10u64, 8u64), (10, 12), (10, 9), (0, 1), (10, 10)];
        let mut carry = 0;
        let mut attributed = 0;
        for (sent, delivered) in windows {
            if sent == 0 {
                carry += delivered;
                continue;
            }
            let (used, rest) = attribute_window(sent, delivered, carry);
            attributed += used;
            carry = rest;
        }
        let total_delivered: u64 = windows.iter().map(|&(_, d)| d).sum();
        assert_eq!(attributed + carry, total_delivered);
    }

    /// Regression for the `delivered.min(sent)` clamp: at small windows a
    /// healthy share of packets crosses a window boundary in flight, and
    /// dropping them biased the traditional baseline pessimistic (loss
    /// overestimated). With carry the EM estimate must stay close to
    /// unbiased even at windows comparable to the delivery latency.
    #[test]
    fn small_window_attribution_not_pessimistic() {
        let spec = RunSpec {
            window: SimDuration::from_secs(10),
            ..quick_spec()
        };
        let out = run_scenario(&spec);
        let rep = out.score_scheme(&out.em);
        assert!(rep.scored_links >= 5, "need links: {}", rep.scored_links);
        // Mean signed error: positive = loss overestimated (pessimistic).
        let bias: f64 = out
            .em
            .iter()
            .filter_map(|(k, est)| out.truth.get(k).map(|t| est - t))
            .sum::<f64>()
            / rep.scored_links as f64;
        assert!(
            bias < 0.04,
            "EM baseline still pessimistically biased at small windows: {bias}"
        );
    }

    #[test]
    fn faulted_run_quarantines_and_stays_deterministic() {
        let spec = RunSpec {
            faults: Some(FaultConfig::corruption(0.05)),
            ..quick_spec()
        };
        let a = run_scenario(&spec);
        let b = run_scenario(&spec);
        let fa = a.faults.expect("fault summary present");
        assert!(fa.injection.frames_corrupted > 0, "faults must fire");
        // Every corrupted packet is either destroyed in flight or lands in
        // a counted quarantine cause — never a panic, never estimator food.
        assert!(a.decode.quarantined() + fa.frames_destroyed > 0);
        assert_eq!(a.decode, b.decode, "faulted runs replay identically");
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.overhead.packets, b.overhead.packets);
        // The unfaulted spec still produces a clean run (no stray draws).
        let clean = run_scenario(&quick_spec());
        assert!(clean.faults.is_none());
        assert_eq!(clean.decode.malformed, 0);
        assert_eq!(clean.decode.bad_hop_count, 0);
    }

    #[test]
    fn sharded_scenario_is_shard_invariant_and_complete() {
        // The sharded engine must produce the same figures for any shard
        // count, and those figures must pass the same sanity bar as the
        // single-loop ones (it is a different — equally valid — sample
        // path, so no cross-engine equality is asserted).
        let a = run_scenario(&quick_spec().with_shards(1));
        let b = run_scenario(&quick_spec().with_shards(5));
        assert_eq!(a.decode, b.decode);
        assert_eq!(a.overhead.packets, b.overhead.packets);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.dophy, b.dophy);
        assert_eq!(a.em, b.em);
        assert_eq!(a.checkpoints.len(), b.checkpoints.len());
        assert!(a.overhead.packets > 300);
        assert!(a.delivery_ratio > 0.9);
        let rep = a.score_scheme(&a.dophy);
        assert!(rep.scored_links >= 5);
        assert!(rep.mae < 0.1, "sharded dophy MAE {}", rep.mae);
    }

    #[test]
    fn corrupted_run_is_shard_and_thread_invariant() {
        // The lifted refusal: frame-corruption faults now draw from
        // per-receiver-node streams, so a corrupted run must be
        // byte-identical at every shard count — and identical to a rerun
        // of itself (determinism), with faults actually firing.
        let spec = RunSpec {
            faults: Some(FaultConfig::corruption(0.05)),
            ..quick_spec()
        };
        let a = run_scenario(&spec.with_shards(1));
        let b = run_scenario(&spec.with_shards(5));
        let c = run_scenario(&spec.with_shards(5));
        let fa = a.faults.expect("fault summary present");
        assert!(fa.injection.frames_corrupted > 0, "faults must fire");
        assert_eq!(a.faults, b.faults, "injection diverged across shards");
        assert_eq!(b.faults, c.faults, "faulted rerun diverged");
        assert_eq!(a.decode, b.decode);
        assert_eq!(a.overhead.packets, b.overhead.packets);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.dophy, b.dophy);
        assert!(a.decode.quarantined() + fa.frames_destroyed > 0);
    }

    #[test]
    fn profiling_a_sharded_run_works_and_does_not_perturb() {
        // The other lifted refusal: profiling on the sharded engine
        // aggregates per-worker-thread wall time. The report must cover
        // the hot subsystems (when the self-profile feature is on) and
        // the profiled run must stay byte-identical to a bare one.
        let bare = run_scenario(&quick_spec().with_shards(3));
        let inst = Instruments {
            profile: true,
            ..Instruments::default()
        };
        let profiled = run_scenario_with(&quick_spec().with_shards(3), inst);
        assert_eq!(bare.decode, profiled.decode);
        assert_eq!(bare.overhead.packets, profiled.overhead.packets);
        assert_eq!(bare.truth, profiled.truth);
        assert_eq!(bare.dophy, profiled.dophy);
        let report = profiled.profile.expect("profile report present");
        assert_eq!(report.subsystems.len(), 5);
        // Runtime probe for the dophy-sim `self-profile` feature: a scope
        // on a fresh profiler only counts when it is compiled in.
        let probe = Profiler::new();
        let t0 = dophy_sim::profile::start(Some(&probe));
        dophy_sim::profile::stop(Some(&probe), dophy_sim::Subsystem::Decode, t0);
        if probe.count(dophy_sim::Subsystem::Decode) > 0 {
            for sub in &report.subsystems {
                assert!(
                    sub.count > 0,
                    "subsystem {} recorded no samples on the sharded engine",
                    sub.subsystem
                );
            }
        }
    }

    #[test]
    fn runspec_shards_field_round_trips_and_defaults() {
        let spec = quick_spec().with_shards(8);
        let json = serde_json::to_string(&spec).unwrap();
        let back: RunSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shards, Some(8));
        assert_eq!(back, spec);
        // Pre-sharding JSON (no `shards` key) still deserializes to the
        // single-loop engine.
        let legacy = serde_json::to_string(&quick_spec()).unwrap();
        let stripped = legacy.replace(",\"shards\":null", "");
        assert!(!stripped.contains("shards"));
        let parsed: RunSpec = serde_json::from_str(&stripped).unwrap();
        assert!(parsed.shards.is_none());
    }

    #[test]
    fn runspec_faults_field_round_trips_and_defaults() {
        let spec = RunSpec {
            faults: Some(FaultConfig::corruption(0.01)),
            ..quick_spec()
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: RunSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.faults, spec.faults);
        // Pre-fault-layer JSON (no `faults` key) still deserializes.
        let legacy = serde_json::to_string(&quick_spec()).unwrap();
        let stripped = legacy.replace(",\"faults\":null", "");
        assert!(!stripped.contains("faults"));
        let parsed: RunSpec = serde_json::from_str(&stripped).unwrap();
        assert!(parsed.faults.is_none());
    }
}
