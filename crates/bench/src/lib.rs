//! # dophy-bench
//!
//! Experiment harness for the Dophy reproduction: regenerates every
//! figure/table of the (reconstructed) evaluation and hosts the criterion
//! microbenchmarks.
//!
//! * [`scenario`] — runs a full simulation and extracts estimates, ground
//!   truth, overhead, churn, and accuracy checkpoints;
//! * [`plan`] — declarative experiments: labelled simulation cells plus a
//!   pure reduce closure;
//! * [`executor`] — shared bounded worker pool with a content-addressed
//!   run cache and per-cell panic isolation;
//! * [`figures`] — one function per experiment (see DESIGN.md's experiment
//!   index); each returns a [`plan::Plan`];
//! * [`report`] — text-table rendering and JSON persistence.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p dophy-bench --bin experiments -- all
//! cargo run --release -p dophy-bench --bin experiments -- fig7 --quick --jobs 4
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod executor;
pub mod figures;
pub mod plan;
pub mod report;
pub mod scenario;
pub mod telemetry;

pub use executor::{
    cache_key, execute_cell, execute_plans, resolve_jobs, HarnessReport, SuiteOutcome,
};
pub use plan::{Cell, CellOutput, CellWork, Plan};
pub use report::{FigureResult, Series};
pub use scenario::{
    run_scenario, run_scenario_with, FaultSummary, Instruments, RunOutput, RunSpec,
};
pub use telemetry::{ProgressMeter, RunTelemetry};
