//! # dophy-bench
//!
//! Experiment harness for the Dophy reproduction: regenerates every
//! figure/table of the (reconstructed) evaluation and hosts the criterion
//! microbenchmarks.
//!
//! * [`scenario`] — runs a full simulation and extracts estimates, ground
//!   truth, overhead, churn, and accuracy checkpoints;
//! * [`figures`] — one function per experiment (see DESIGN.md's experiment
//!   index); each returns a [`report::FigureResult`];
//! * [`report`] — text-table rendering and JSON persistence.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p dophy-bench --bin experiments -- all
//! cargo run --release -p dophy-bench --bin experiments -- fig7 --quick
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod report;
pub mod scenario;
pub mod telemetry;

pub use report::{FigureResult, Series};
pub use scenario::{
    run_scenario, run_scenario_with, FaultSummary, Instruments, RunOutput, RunSpec,
};
pub use telemetry::{ProgressMeter, RunTelemetry};
