//! Declarative experiment plans: the *what* of an experiment, split from
//! the *how* of running it.
//!
//! An experiment used to be an opaque `fn(quick) -> FigureResult` that
//! built specs, ran simulations (sometimes on its own ad-hoc threads), and
//! folded the outputs — all interleaved. A [`Plan`] separates those
//! concerns:
//!
//! * [`Cell`]s name the simulation runs the experiment needs. Each cell is
//!   data — a [`RunSpec`] plus optional [`Instruments`] — so the executor
//!   can schedule every cell of every selected experiment on one shared
//!   bounded worker pool, and content-address identical specs to run them
//!   once (see [`crate::executor`]).
//! * The `reduce` closure is the pure tail of the experiment: it folds the
//!   finished [`RunOutput`]s (in cell order) into a [`FigureResult`] and
//!   touches no global state, so results are identical at any worker
//!   count.
//!
//! Experiments that drive the [`dophy_sim::Engine`] directly mid-run (the
//! tracking and energy studies) don't decompose into `RunSpec` cells;
//! they become a single [`CellWork::Custom`] cell, which still rides the
//! shared pool and panic isolation but bypasses the run cache.

use crate::report::FigureResult;
use crate::scenario::{Instruments, RunOutput, RunSpec};
use std::sync::Arc;

/// The work one cell performs.
pub enum CellWork {
    /// A declarative simulation run: hashable spec, optional instruments.
    /// Cacheable when the instruments are all off (the default).
    Run {
        /// Scenario to execute (boxed: a full config tree is ~500 bytes,
        /// which would otherwise dominate the enum).
        spec: Box<RunSpec>,
        /// Optional observability attached to the run. Instruments never
        /// change results, but an instrumented cell bypasses the run
        /// cache so its observer sees exactly its own run.
        instruments: Instruments,
    },
    /// An imperative experiment body producing its figure directly.
    /// Runs on the pool with panic isolation, but is never cached.
    Custom(Box<dyn FnOnce() -> FigureResult + Send>),
}

/// One schedulable unit of an experiment.
pub struct Cell {
    /// Short label for telemetry (`cap=4`, `sigma=0.02`, ...), unique
    /// within its plan.
    pub label: String,
    /// What the cell does.
    pub work: CellWork,
}

impl Cell {
    /// Uninstrumented (and therefore cacheable) simulation cell.
    pub fn run(label: impl Into<String>, spec: RunSpec) -> Self {
        Self {
            label: label.into(),
            work: CellWork::Run {
                spec: Box::new(spec),
                instruments: Instruments::default(),
            },
        }
    }

    /// Simulation cell with observability attached (bypasses the cache).
    pub fn instrumented(label: impl Into<String>, spec: RunSpec, instruments: Instruments) -> Self {
        Self {
            label: label.into(),
            work: CellWork::Run {
                spec: Box::new(spec),
                instruments,
            },
        }
    }
}

/// A finished cell's output, as handed to the reduce closure.
pub enum CellOutput {
    /// Output of a [`CellWork::Run`] cell. Shared (`Arc`) because the
    /// content-addressed cache hands the same run to every cell whose
    /// spec hashes equal.
    Run(Arc<RunOutput>),
    /// Output of a [`CellWork::Custom`] cell.
    Figure(FigureResult),
}

/// Pure fold from finished cells (in declaration order) to the figure.
pub type Reduce = Box<dyn FnOnce(Vec<CellOutput>) -> FigureResult + Send>;

/// A declarative experiment: labelled cells plus a pure reduce.
pub struct Plan {
    /// Registry id (`fig7`, `tab3-seeds`, ...).
    pub id: &'static str,
    /// The simulation cells, in the order the reduce will see them.
    pub cells: Vec<Cell>,
    /// Folds the cell outputs into the experiment's figure.
    pub reduce: Reduce,
}

impl Plan {
    /// Plan over simulation cells whose reduce sees the [`RunOutput`]s in
    /// cell order.
    ///
    /// # Panics
    ///
    /// The wrapped reduce panics (failing only this experiment) if any
    /// cell is [`CellWork::Custom`] — mixed plans must use the raw
    /// constructor and match on [`CellOutput`] themselves.
    pub fn new(
        id: &'static str,
        cells: Vec<Cell>,
        reduce: impl FnOnce(Vec<Arc<RunOutput>>) -> FigureResult + Send + 'static,
    ) -> Self {
        Self {
            id,
            cells,
            reduce: Box::new(move |outs| {
                let runs: Vec<Arc<RunOutput>> = outs
                    .into_iter()
                    .map(|o| match o {
                        CellOutput::Run(r) => r,
                        CellOutput::Figure(_) => {
                            panic!("Plan::new reduce expects run cells only")
                        }
                    })
                    .collect();
                reduce(runs)
            }),
        }
    }

    /// Single-run plan: one cell, reduce over its output.
    pub fn single(
        id: &'static str,
        label: impl Into<String>,
        spec: RunSpec,
        reduce: impl FnOnce(&RunOutput) -> FigureResult + Send + 'static,
    ) -> Self {
        Plan::new(id, vec![Cell::run(label, spec)], move |outs| {
            reduce(&outs[0])
        })
    }

    /// Plan wrapping one imperative experiment body (engine-driving
    /// experiments that don't decompose into `RunSpec` cells).
    pub fn custom(
        id: &'static str,
        label: impl Into<String>,
        work: impl FnOnce() -> FigureResult + Send + 'static,
    ) -> Self {
        Self {
            id,
            cells: vec![Cell {
                label: label.into(),
                work: CellWork::Custom(Box::new(work)),
            }],
            reduce: Box::new(|mut outs| match outs.pop() {
                Some(CellOutput::Figure(fig)) => fig,
                _ => panic!("custom plan expects exactly one figure cell"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_plan_reduces_to_its_figure() {
        let plan = Plan::custom("t", "only", || FigureResult::new("t-fig", "T", "x", "y"));
        assert_eq!(plan.id, "t");
        assert_eq!(plan.cells.len(), 1);
        let fig = (plan.reduce)(vec![CellOutput::Figure(FigureResult::new(
            "t-fig", "T", "x", "y",
        ))]);
        assert_eq!(fig.id, "t-fig");
    }

    #[test]
    fn run_cells_are_cacheable_by_default() {
        let spec = RunSpec::new(
            dophy_sim::SimConfig::canonical(1),
            dophy::protocol::DophyConfig::default(),
            dophy_sim::SimDuration::from_secs(60),
        );
        let cell = Cell::run("a", spec);
        match cell.work {
            CellWork::Run { instruments, .. } => {
                assert!(instruments.observer.is_none());
                assert!(instruments.metrics_every.is_none());
                assert!(!instruments.progress);
            }
            CellWork::Custom(_) => panic!("expected a run cell"),
        }
    }
}
