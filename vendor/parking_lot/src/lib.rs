//! Minimal in-tree stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API shape the
//! workspace uses: `lock()` / `read()` / `write()` return guards directly
//! (no poisoning `Result`). A poisoned std lock only occurs after another
//! thread panicked while holding the guard; in that case the process is
//! already failing, so we propagate the panic rather than invent state.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive (API-compatible subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|_| panic!("mutex poisoned by a panicking thread"))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|_| panic!("mutex poisoned by a panicking thread"))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|_| panic!("mutex poisoned by a panicking thread"))
    }
}

/// Reader-writer lock (API-compatible subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|_| panic!("rwlock poisoned by a panicking thread"))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|_| panic!("rwlock poisoned by a panicking thread"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2, 3]);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
