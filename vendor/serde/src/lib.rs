//! Minimal in-tree stand-in for `serde`.
//!
//! Instead of serde's zero-copy visitor architecture, this stand-in routes
//! everything through an owned [`Value`] tree: `Serialize` lowers a type to
//! a `Value`, `Deserialize` lifts it back. The `serde_json` stand-in then
//! renders/parses `Value` as JSON text. The data model mirrors serde_json's
//! external representation (structs → objects, unit enum variants →
//! strings, data-carrying variants → single-key objects, tuples → arrays,
//! maps → string-keyed objects) so files written by the real crates parse
//! here and vice versa.
//!
//! One deliberate difference: `HashMap` entries are emitted sorted by key.
//! The real serde_json preserves `HashMap`'s nondeterministic iteration
//! order; this workspace requires byte-identical output across identical
//! runs, so deterministic key order is a feature, not a bug.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (only produced for negative values or `i*` sources).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field by name in an object's entry list.
pub fn find_field<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Serialization/deserialization error: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the serde data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Attempts to build `Self` from the serde data model.
    ///
    /// # Errors
    /// Returns [`Error`] when `v` does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match v {
                    Value::UInt(u) => i128::from(*u),
                    Value::Int(i) => i128::from(*i),
                    other => {
                        return Err(Error::new(format!(
                            "expected unsigned integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::new(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = i64::from(*self);
                if x < 0 { Value::Int(x) } else { Value::UInt(x as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match v {
                    Value::UInt(u) => i128::from(*u),
                    Value::Int(i) => i128::from(*i),
                    other => {
                        return Err(Error::new(format!(
                            "expected integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::new(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v).map(|x| x as isize)
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    // Non-finite floats serialize to null; round-trip as NaN.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::new(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::new("expected array for tuple"))?;
                if items.len() != $len {
                    return Err(Error::new(format!(
                        "expected {}-tuple, found array of {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

/// Types usable as map keys: encoded to/from the JSON object key string.
pub trait MapKey: Sized {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back from its string form.
    ///
    /// # Errors
    /// Returns [`Error`] when `s` is not a valid rendering of `Self`.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| {
                    Error::new(format!(
                        "invalid {} map key: {s:?}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: MapKey, B: MapKey> MapKey for (A, B) {
    fn to_key(&self) -> String {
        format!("{},{}", self.0.to_key(), self.1.to_key())
    }

    fn from_key(s: &str) -> Result<Self, Error> {
        let (a, b) = s
            .split_once(',')
            .ok_or_else(|| Error::new(format!("invalid pair map key: {s:?}")))?;
        Ok((A::from_key(a)?, B::from_key(b)?))
    }
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: MapKey + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(String, Value)> =
        entries.map(|(k, v)| (k.to_key(), v.to_value())).collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Object(pairs)
}

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| Error::new("expected object for map"))?;
        entries
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| Error::new("expected object for map"))?;
        entries
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u16::from_value(&7u16.to_value()).unwrap(), 7);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert!(u8::from_value(&300u16.to_value()).is_err());
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Some(0.5).to_value()).unwrap(),
            Some(0.5)
        );
    }

    #[test]
    fn hash_map_keys_sorted_and_round_trip() {
        let mut m: HashMap<(u16, u16), u64> = HashMap::new();
        m.insert((10, 2), 5);
        m.insert((2, 10), 7);
        let v = m.to_value();
        let obj = v.as_object().unwrap();
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        let back: HashMap<(u16, u16), u64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuple_and_vec_round_trip() {
        let points = vec![(0.5f64, 1.25f64), (2.0, 3.5)];
        let back: Vec<(f64, f64)> = Deserialize::from_value(&points.to_value()).unwrap();
        assert_eq!(back, points);
    }
}
