//! Minimal in-tree stand-in for `proptest`.
//!
//! Covers the slice of the proptest API this workspace's property tests
//! use: range and tuple strategies, `Just`, `prop_map`, `prop_oneof!`,
//! `any`, `collection::vec`, `ProptestConfig::with_cases`, and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Differences from the real crate are intentional simplifications:
//! no shrinking (a failing case reports the assertion directly), no
//! persisted regression files, and deterministic per-test seeding derived
//! from the test function's name, so failures reproduce exactly across
//! runs without an environment variable protocol.

#![forbid(unsafe_code)]

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Controls how many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic RNG driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Seeds the RNG from the test's name (FNV-1a), so each property
        /// gets a distinct but reproducible stream.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                inner: SmallRng::seed_from_u64(h),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.sample(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strategy.sample(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms` (must be non-empty).
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
    impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

    /// Types generable over their whole domain via [`crate::arbitrary::any`].
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary!(bool, u8, u16, u32, u64, f32, f64);

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u64>() as usize
        }
    }

    macro_rules! impl_arbitrary_signed {
        ($($t:ty: $u:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$u>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_signed!(i8: u8, i16: u16, i32: u32, i64: u64);

    /// Strategy yielding unconstrained values of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` entry point.
pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};

    /// Strategy generating unconstrained values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bound on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => {
        assert!($($tt)*)
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => {
        assert_eq!($($tt)*)
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => {
        assert_ne!($($tt)*)
    };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property test functions: each named argument is drawn from its
/// strategy `cases` times and the body re-run per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher behind [`proptest!`]; one test function per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let __strategy = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::sample(&__strategy, &mut __rng);
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// One-stop imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = TestRng::for_test("ranges_and_maps_sample_in_bounds");
        let s = (1u16..5, (0.0f64..1.0)).prop_map(|(a, b)| f64::from(a) + b);
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!((1.0..5.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_test("oneof_hits_every_arm");
        let s = prop_oneof![Just(0u8), Just(1u8), 2u8..=3];
        let mut seen = [false; 4];
        for _ in 0..400 {
            seen[usize::from(s.sample(&mut rng))] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_test("vec_lengths_respect_size_range");
        let s = crate::collection::vec(any::<u8>(), 2..6);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_runnable_tests(
            a in 0u32..10,
            b in 0u32..10,
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
