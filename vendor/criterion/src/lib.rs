//! Minimal in-tree stand-in for `criterion`.
//!
//! Provides the benchmark-harness API surface the workspace's `benches/`
//! use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `black_box`, `criterion_group!`/`criterion_main!`) with a
//! deliberately small measurement loop: one warm-up call, then up to
//! `sample_size` timed iterations bounded by a per-benchmark time budget.
//! It reports mean wall-clock per iteration (and derived throughput) to
//! stdout — no statistics engine, plots, or baselines. Good enough to keep
//! `cargo bench` runnable and the bench targets compiling offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work per iteration, used to derive throughput from iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark name plus a parameter, rendered as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            full: format!("{}/{parameter}", name.into()),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.full, self.throughput);
        self
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// Per-benchmark iteration budget: whichever of the sample cap or this
/// wall-clock budget is hit first ends the measurement.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    iters: u64,
    total: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            iters: 0,
            total: Duration::ZERO,
        }
    }

    /// Times `f`, called repeatedly up to the sample/time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{group}/{id}: no iterations recorded");
            return;
        }
        let per_iter = self.total / u32::try_from(self.iters).unwrap_or(u32::MAX);
        let mut line = format!(
            "{group}/{id}: {:.3} ms/iter over {} iters",
            per_iter.as_secs_f64() * 1e3,
            self.iters
        );
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            match throughput {
                Some(Throughput::Elements(n)) => {
                    line.push_str(&format!(" ({:.0} elem/s)", n as f64 / secs));
                }
                Some(Throughput::Bytes(n)) => {
                    line.push_str(&format!(" ({:.0} B/s)", n as f64 / secs));
                }
                None => {}
            }
        }
        println!("{line}");
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(5);
        g.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            });
        });
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.finish();
        // warm-up + up to 5 timed iterations
        assert!((2..=6).contains(&calls), "{calls}");
    }
}
