//! Minimal in-tree stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` stand-in's [`Value`] tree as
//! JSON text: [`to_string`], [`to_string_pretty`] (2-space indent) and
//! [`from_str`]. Numbers print in shortest round-trip form (integers
//! without a trailing `.0`; non-finite floats as `null`, as serde_json
//! does). Output is deterministic: object key order is whatever the
//! `Serialize` impl produced (struct field order; sorted keys for maps).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Match serde_json: whole floats keep a ".0" marker.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Infallible for the stand-in data model; `Result` kept for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
/// Infallible for the stand-in data model; `Result` kept for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Bulk-copy the run of plain characters up to the next
                    // quote or escape. The input is a &str and `"`/`\` are
                    // ASCII, so both ends of the run are char boundaries;
                    // validating only this chunk keeps parsing linear in the
                    // document size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("bad utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }
}

/// Parses a JSON document into any [`Deserialize`] type.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<String>("\"a\\u0041\"").unwrap(), "aA");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1.5f64, 2.0f64), (3.0, 4.25)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1.5,2.0],[3.0,4.25]]");
        let back: Vec<(f64, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let opt: Option<u16> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u16>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = vec![vec![1u8, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        let back: Vec<Vec<u8>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }
}
