//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of the `rand 0.8` API it actually uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill_bytes`), [`SeedableRng`]
//! (`seed_from_u64`), and [`rngs::SmallRng`].
//!
//! `SmallRng` is xoshiro256++ seeded via SplitMix64 — the same generator
//! the real crate uses on 64-bit targets, so raw `next_u64` streams match
//! upstream `rand 0.8` bit for bit. `gen_range` uses the widening-multiply
//! map (Lemire without rejection): deterministic and uniform to within
//! 2⁻⁶⁴, which is far below any tolerance in this workspace.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full domain (the `Standard`
/// distribution of the real crate).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u16 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardSample for u8 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                ((self.start as i128) + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t; // full u64 domain
                }
                let off = ((u128::from(rng.next_u64()) * span) >> 64) as u64;
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` over its full domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 state expansion,
    /// matching upstream `rand`).
    fn seed_from_u64(state: u64) -> Self;

    /// Deterministic stand-in for upstream's entropy-seeded construction:
    /// this workspace is a reproducible simulator, so "entropy" is a fixed
    /// seed.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator behind `SmallRng` on
    /// 64-bit targets in `rand 0.8`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(mut sm: u64) -> Self {
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_samples() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(1u8..=7);
            assert!((1..=7).contains(&y));
            let z = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn bool_is_balanced() {
        let mut r = SmallRng::seed_from_u64(4);
        let ones = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4500..5500).contains(&ones), "ones {ones}");
    }
}
