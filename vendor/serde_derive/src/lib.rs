//! Minimal in-tree stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` stand-in's `Value` data model, without `syn`/
//! `quote`: the item is parsed with a small hand-rolled token walker
//! (enough for the plain structs and enums this workspace derives on — no
//! generics, no `#[serde(...)]` attributes) and the impl is generated as
//! source text.
//!
//! Representation matches serde_json's external form:
//! - named struct → object of fields (missing fields fall back to `Null`
//!   so `Option` fields tolerate omission)
//! - newtype struct → transparent inner value
//! - tuple struct → array
//! - unit enum variant → variant-name string
//! - data-carrying variant → `{"Variant": ...}` single-key object

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum StructFields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: StructFields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips leading `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility prefix, starting at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Advances past one type expression, stopping after the `,` that
/// terminates it (or at end of tokens). Tracks `<`/`>` depth so commas
/// inside generic arguments don't split the field.
fn skip_type_until_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth: i32 = 0;
    while let Some(tok) = tokens.get(i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(tok) = tokens.get(i) else { break };
        let TokenTree::Ident(name) = tok else {
            return Err(format!("unexpected token in field list: {tok}"));
        };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        i = skip_type_until_comma(&tokens, i);
    }
    Ok(fields)
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_type_until_comma(&tokens, i);
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(tok) = tokens.get(i) else { break };
        let TokenTree::Ident(name) = tok else {
            return Err(format!("unexpected token in enum body: {tok}"));
        };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g)?)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip an optional `= discriminant` and the trailing comma.
        i = skip_type_until_comma(&tokens, i);
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "derive stand-in does not support generic type `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    StructFields::Named(parse_named_fields(g)?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    StructFields::Tuple(count_tuple_fields(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => StructFields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => return Err(format!("unexpected enum body: {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n"
            ));
            match fields {
                StructFields::Named(names) => {
                    out.push_str(
                        "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                    );
                    for f in names {
                        out.push_str(&format!(
                            "entries.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                        ));
                    }
                    out.push_str("::serde::Value::Object(entries)\n");
                }
                StructFields::Tuple(1) => {
                    out.push_str("::serde::Serialize::to_value(&self.0)\n");
                }
                StructFields::Tuple(n) => {
                    out.push_str("::serde::Value::Array(vec![");
                    for idx in 0..*n {
                        out.push_str(&format!("::serde::Serialize::to_value(&self.{idx}),"));
                    }
                    out.push_str("])\n");
                }
                StructFields::Unit => out.push_str("::serde::Value::Null\n"),
            }
            out.push_str("}\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n"
            ));
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => out.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => out.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        out.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                    VariantKind::Struct(field_names) => {
                        out.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            field_names.join(", "),
                            field_names
                                .iter()
                                .map(|f| format!(
                                    "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out
}

/// Emits an expression deserializing field `fname` of `owner` from object
/// entries bound to `entries`; missing fields fall back to `Null` so
/// `Option` fields tolerate omission.
fn named_field_expr(owner: &str, fname: &str) -> String {
    format!(
        "match ::serde::find_field(entries, {fname:?}) {{\n\
         Some(v) => ::serde::Deserialize::from_value(v)?,\n\
         None => ::serde::Deserialize::from_value(&::serde::Value::Null).map_err(|_| \
         ::serde::Error::new(concat!(\"missing field `\", {fname:?}, \"` in \", {owner:?})))?,\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            match fields {
                StructFields::Named(names) => {
                    out.push_str(&format!(
                        "let entries = v.as_object().ok_or_else(|| ::serde::Error::new(concat!(\"expected object for struct \", {name:?})))?;\n"
                    ));
                    out.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
                    for f in names {
                        out.push_str(&format!("{f}: {},\n", named_field_expr(name, f)));
                    }
                    out.push_str("})\n");
                }
                StructFields::Tuple(1) => {
                    out.push_str(&format!(
                        "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n"
                    ));
                }
                StructFields::Tuple(n) => {
                    out.push_str(&format!(
                        "let items = v.as_array().ok_or_else(|| ::serde::Error::new(concat!(\"expected array for struct \", {name:?})))?;\n\
                         if items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::new(concat!(\"wrong arity for struct \", {name:?}))); }}\n"
                    ));
                    out.push_str(&format!("::std::result::Result::Ok({name}("));
                    for idx in 0..*n {
                        out.push_str(&format!(
                            "::serde::Deserialize::from_value(&items[{idx}])?,"
                        ));
                    }
                    out.push_str("))\n");
                }
                StructFields::Unit => {
                    out.push_str(&format!("::std::result::Result::Ok({name})\n"));
                }
            }
            out.push_str("}\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let Some(s) = v.as_str() {{\n\
                 return match s {{\n"
            ));
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vname = &v.name;
                    out.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
            }
            out.push_str(&format!(
                "other => ::std::result::Result::Err(::serde::Error::new(format!(\"unknown variant {{other:?}} for enum {name}\"))),\n\
                 }};\n\
                 }}\n\
                 let entries = v.as_object().ok_or_else(|| ::serde::Error::new(concat!(\"expected string or object for enum \", {name:?})))?;\n\
                 if entries.len() != 1 {{ return ::std::result::Result::Err(::serde::Error::new(concat!(\"expected single-key object for enum \", {name:?}))); }}\n\
                 let (tag, v) = &entries[0];\n\
                 match tag.as_str() {{\n"
            ));
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => out.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => out.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(v)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        out.push_str(&format!(
                            "{vname:?} => {{\n\
                             let items = v.as_array().ok_or_else(|| ::serde::Error::new(concat!(\"expected array for variant \", {vname:?})))?;\n\
                             if items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::new(concat!(\"wrong arity for variant \", {vname:?}))); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(field_names) => {
                        let owner = format!("{name}::{vname}");
                        let fields: Vec<String> = field_names
                            .iter()
                            .map(|f| format!("{f}: {}", named_field_expr(&owner, f)))
                            .collect();
                        out.push_str(&format!(
                            "{vname:?} => {{\n\
                             let entries = v.as_object().ok_or_else(|| ::serde::Error::new(concat!(\"expected object for variant \", {vname:?})))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                             }}\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "other => ::std::result::Result::Err(::serde::Error::new(format!(\"unknown variant {{other:?}} for enum {name}\"))),\n\
                 }}\n\
                 }}\n\
                 }}\n"
            ));
        }
    }
    out
}

/// Derives the vendored `serde::Serialize` for a plain struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen: {e}"))),
        Err(e) => compile_error(&e),
    }
}

/// Derives the vendored `serde::Deserialize` for a plain struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen: {e}"))),
        Err(e) => compile_error(&e),
    }
}
