//! Minimal in-tree stand-in for `crossbeam`.
//!
//! Provides only `crossbeam::thread::scope` + scoped `spawn`, implemented
//! on top of `std::thread::scope` (stable since Rust 1.63). Matches the
//! crossbeam calling convention used in this workspace: the spawn closure
//! receives a scope argument (ignored by all call sites here), and both
//! `scope` and `join` report panics as `Err(Box<dyn Any + Send>)` instead
//! of re-panicking.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Placeholder for the nested-scope handle crossbeam passes to spawn
    /// closures. Call sites in this workspace ignore it (`|_| ...`);
    /// nested spawning is not supported by this stand-in.
    #[derive(Debug, Clone, Copy)]
    pub struct NestedScope {
        _priv: (),
    }

    /// A scope in which threads borrowing the environment may be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; `join` returns the closure's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        #[allow(clippy::missing_errors_doc)]
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread running `f`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&NestedScope { _priv: () })),
            }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns. A panic escaping `f` (or an unjoined spawned thread)
    /// is reported as `Err`.
    #[allow(clippy::missing_errors_doc)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_environment() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn panics_surface_as_err() {
        let res = crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        });
        assert!(res.is_ok());
    }
}
