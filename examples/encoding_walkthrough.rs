//! Walkthrough of Dophy's in-packet encoding machinery, without a
//! simulator: build a packet at an origin, push it hop by hop along a path
//! (each receiver encodes its hop index and the observed retransmission
//! count into the suspended arithmetic stream), then flush and decode at
//! the sink. Prints the stream growth and compares against the baseline
//! coders on the same records.
//!
//! ```text
//! cargo run --release --example encoding_walkthrough
//! ```

use dophy::decoder::decode_packet;
use dophy::encoder::encode_hop;
use dophy::header::DophyHeader;
use dophy::model_mgr::ModelSet;
use dophy::symbols::SymbolSpaces;
use dophy_coding::aggregate::AggregationPolicy;
use dophy_coding::bitio::BitWriter;
use dophy_coding::elias::gamma_encode;
use dophy_coding::fixed::FixedRecord;
use dophy_coding::golomb::RiceCoder;
use dophy_sim::{NodeId, Placement, RadioModel, RngHub, Topology};

fn main() {
    // A 10-node line: node 9 reports through 8, 7, ..., 1 to the sink 0.
    let topo = Topology::generate(
        Placement::Line {
            n: 10,
            spacing: 20.0,
        },
        &RadioModel::default(),
        &RngHub::new(5),
    );
    let max_degree = (0..topo.node_count())
        .map(|i| topo.neighbors(NodeId(i as u32)).len())
        .max()
        .unwrap();
    let spaces = SymbolSpaces::new(max_degree, 7, AggregationPolicy::Cap { cap: 4 }, false);
    let models = ModelSet::initial(&spaces);

    // The per-hop observations: (sender, receiver, attempts-until-first-
    // success as the receiver's MAC observed them).
    let path: Vec<NodeId> = (0..10).rev().map(NodeId).collect(); // 9..0
    let attempts: Vec<u16> = vec![1, 2, 1, 1, 3, 1, 1, 2, 1];

    println!("origin n9 sends; each receiver encodes (hop-index, attempts):");
    println!();
    let mut header = DophyHeader::new(NodeId(9), 1, 0);
    println!(
        "{:>6} {:>12} {:>9} {:>14} {:>12}",
        "hop", "link", "attempts", "stream (wire)", "bits/hop"
    );
    for i in 0..path.len() - 2 {
        let (snd, rcv) = (path[i], path[i + 1]);
        encode_hop(&mut header, &topo, &spaces, &models, snd, rcv, attempts[i]).expect("valid hop");
        println!(
            "{:>6} {:>12} {:>9} {:>14} {:>12.2}",
            i + 1,
            format!("{snd}->{rcv}"),
            attempts[i],
            format!("{} B", header.wire_stream_len()),
            header.wire_stream_len() as f64 * 8.0 / (i + 1) as f64,
        );
    }

    // The final hop (to the sink) is observed directly — never encoded.
    let final_sender = path[path.len() - 2];
    let final_attempt = *attempts.last().unwrap();
    let decoded = decode_packet(
        &header,
        &topo,
        &spaces,
        &models,
        final_sender,
        final_attempt,
    )
    .expect("decodable");

    println!();
    println!("sink decodes the packet:");
    println!("  recovered path: {:?}", decoded.path());
    for obs in &decoded.observations {
        println!(
            "  {} -> {}: {:?}",
            obs.sender, obs.receiver, obs.observation
        );
    }

    // Baselines encoding the same 8 records.
    let k = path.len() - 2;
    let explicit = FixedRecord::for_network(topo.node_count(), 7);
    let rice = RiceCoder::new(0);
    let mut rice_bits = 0;
    let mut elias = BitWriter::new();
    for &a in attempts.iter().take(k) {
        rice_bits += explicit.id_bits as u64 + rice.code_len(u64::from(a - 1));
        elias.write_bits(0, explicit.id_bits); // id field
        gamma_encode(&mut elias, u64::from(a));
    }
    println!();
    println!("encoding the same {k} hop records:");
    println!(
        "  dophy arithmetic stream : {:>3} B",
        header.wire_stream_len()
    );
    println!("  golomb-rice + fixed ids : {:>3} B", rice_bits.div_ceil(8));
    println!("  elias-gamma + fixed ids : {:>3} B", elias.byte_len());
    println!(
        "  explicit byte-aligned   : {:>3} B",
        k * explicit.bytes_aligned()
    );
}
