//! The network-manager use case from the paper's introduction: watch the
//! network live and raise alarms when a link's loss ratio degrades, using
//! Dophy's windowed estimates and confidence intervals.
//!
//! A mid-network link is driven through a scripted quality collapse
//! (Gilbert–Elliott with a long bad state), and the watchdog report is
//! printed every 2 simulated minutes.
//!
//! ```text
//! cargo run --release --example link_watchdog
//! ```

use dophy::protocol::{build_simulation, DophyConfig};
use dophy::tracking::{detect_anomalies, WindowConfig};
use dophy_sim::{LinkDynamics, NodeId, Placement, SimConfig, SimDuration};

fn main() {
    let sim = SimConfig {
        placement: Placement::Grid {
            side: 6,
            spacing: 14.0,
        },
        // Every link gets slow bursts; some will dip deep enough to alarm.
        dynamics: LinkDynamics::Bursty {
            lift: 0.05,
            bad_factor: 0.25,
            cycle_s: 240.0,
        },
        ..SimConfig::canonical(33)
    };
    let dophy = DophyConfig {
        traffic_period: SimDuration::from_secs(2),
        tracking: WindowConfig {
            window: SimDuration::from_secs(60),
            merge_windows: 3,
        },
        ..DophyConfig::default()
    };
    let (mut engine, shared) = build_simulation(&sim, &dophy);
    engine.start();

    const LOSS_THRESHOLD: f64 = 0.25;
    const MIN_Z: f64 = 3.0;
    println!(
        "watchdog: alarm when estimated loss > {LOSS_THRESHOLD} with {MIN_Z}-sigma confidence\n"
    );

    let r = sim.mac.max_attempts;
    for minute in (2..=30).step_by(2) {
        engine.run_for(SimDuration::from_secs(120));
        let s = shared.lock();
        let estimates = s.infer.windowed.estimates(engine.now(), r, 20);
        let alarms = detect_anomalies(&estimates, LOSS_THRESHOLD, MIN_Z);
        print!("t={minute:>2}min  links-watched={:<3} ", estimates.len());
        if alarms.is_empty() {
            println!("all quiet");
        } else {
            let summary: Vec<String> = alarms
                .iter()
                .take(4)
                .map(|a| {
                    // Cross-check against ground truth for the printout.
                    let truth = engine
                        .topology()
                        .link_id(NodeId(a.link.0), NodeId(a.link.1))
                        .and_then(|id| engine.trace().links()[id].empirical_loss())
                        .unwrap_or(f64::NAN);
                    format!(
                        "n{}->n{} loss {:.2} ({:.1}σ, true-avg {:.2})",
                        a.link.0, a.link.1, a.loss, a.z, truth
                    )
                })
                .collect();
            println!("ALARMS: {}", summary.join("; "));
        }
    }

    // Final snapshot: the full operator-facing health report.
    let s = shared.lock();
    let report = dophy::diagnosis::NetworkHealthReport::generate(
        &s,
        engine.now(),
        &dophy::diagnosis::DiagnosisConfig {
            max_attempts: r,
            loss_threshold: LOSS_THRESHOLD,
            min_z: MIN_Z,
            ..dophy::diagnosis::DiagnosisConfig::default()
        },
    );
    println!("\n{}", report.render(8));
}
