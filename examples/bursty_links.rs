//! Stress the i.i.d.-loss assumption: run Dophy over bursty
//! (Gilbert–Elliott) channels and compare estimation error against the
//! same network with independent losses of identical mean.
//!
//! ```text
//! cargo run --release --example bursty_links
//! ```

use dophy::metrics::score;
use dophy::protocol::{build_simulation, DophyConfig};
use dophy_sim::{LinkDynamics, SimConfig, SimDuration};
use std::collections::HashMap;

fn run(dynamics: LinkDynamics, label: &str) -> (f64, f64, usize) {
    let sim = SimConfig {
        dynamics,
        ..SimConfig::canonical(19)
    };
    let dophy = DophyConfig {
        traffic_period: SimDuration::from_secs(5),
        ..DophyConfig::default()
    };
    let (mut engine, shared) = build_simulation(&sim, &dophy);
    engine.start();
    engine.run_for(SimDuration::from_secs(1800));

    let mut truth = HashMap::new();
    for (i, l) in engine.topology().links().iter().enumerate() {
        let t = engine.trace().links()[i];
        if t.data_tx >= 30 {
            if let Some(loss) = t.empirical_loss() {
                truth.insert((l.src.0, l.dst.0), loss);
            }
        }
    }
    let s = shared.lock();
    let est: HashMap<(u32, u32), f64> = s
        .infer
        .in_band
        .estimates(sim.mac.max_attempts, 10)
        .into_iter()
        .map(|(k, e)| (k, e.loss))
        .collect();
    let rep = score(&est, &truth);
    println!(
        "{label:>28}: MAE {:.4}  RMSE {:.4}  links {}  delivery {:.3}",
        rep.mae,
        rep.rmse,
        rep.scored_links,
        s.total_delivery_ratio().unwrap_or(0.0)
    );
    (rep.mae, rep.rmse, rep.scored_links)
}

fn main() {
    println!("200-node disk, 30 simulated minutes per run\n");
    let (iid_mae, _, _) = run(LinkDynamics::Static, "i.i.d. losses");
    let mut worst: f64 = iid_mae;
    for cycle in [5.0, 30.0, 120.0] {
        let (mae, _, _) = run(
            LinkDynamics::Bursty {
                lift: 0.1,
                bad_factor: 0.4,
                cycle_s: cycle,
            },
            &format!("bursty (cycle {cycle:.0}s)"),
        );
        worst = worst.max(mae);
    }
    println!();
    println!(
        "burstiness inflates Dophy's MAE by at most {:.1}x on this workload — \
         the geometric model degrades gracefully because retransmission\n\
         counts remain a direct (if correlated) sample of the channel.",
        worst / iid_mae.max(1e-9)
    );
}
