//! The paper's motivating scenario: loss tomography while routing paths
//! churn. Runs the same volatile network twice — once scored with Dophy's
//! retransmission-count estimates, once with traditional end-to-end
//! tomography — and prints both error profiles plus the measured routing
//! dynamics.
//!
//! ```text
//! cargo run --release --example dynamic_network
//! ```

use dophy::baseline::{
    survival_to_transmission_loss, PathMeasurement, TraditionalConfig, TraditionalTomography,
};
use dophy::metrics::score;
use dophy::protocol::{build_simulation, DophyConfig};
use dophy_sim::{LinkDynamics, NodeId, Placement, SimConfig, SimDuration};
use std::collections::HashMap;

fn main() {
    let sim = SimConfig {
        placement: Placement::UniformDisk {
            n: 100,
            radius: 90.0,
        },
        dynamics: LinkDynamics::Volatile {
            sigma_per_sqrt_s: 0.03,
        },
        ..SimConfig::canonical(7)
    };
    let dophy = DophyConfig {
        traffic_period: SimDuration::from_secs(5),
        ..DophyConfig::default()
    };

    let (mut engine, shared) = build_simulation(&sim, &dophy);
    engine.start();

    println!("simulating 100 nodes with drifting links for 30 minutes ...");
    // Drive the run in 60 s windows; each window start snapshots the tree
    // the way the traditional baseline's periodic topology reports would.
    let n = engine.topology().node_count();
    let mut tomo = TraditionalTomography::new();
    let mut prev_sent = vec![0u64; n];
    let mut prev_delivered = vec![0u64; n];
    for _ in 0..30 {
        let paths: Vec<Option<Vec<(u32, u32)>>> = (0..n)
            .map(|i| {
                let mut cur = NodeId(i as u32);
                let mut path = Vec::new();
                for _ in 0..n {
                    if cur == NodeId::SINK {
                        return Some(path);
                    }
                    let next = engine.protocol(cur).router().next_hop()?;
                    path.push((cur.0, next.0));
                    cur = next;
                }
                None
            })
            .collect();
        engine.run_for(SimDuration::from_secs(60));
        let s = shared.lock();
        for origin in 1..n {
            let sent = s.sent_per_origin[origin] - prev_sent[origin];
            let delivered = s.delivered_per_origin[origin] - prev_delivered[origin];
            prev_sent[origin] = s.sent_per_origin[origin];
            prev_delivered[origin] = s.delivered_per_origin[origin];
            if let (Some(path), true) = (&paths[origin], sent > 0) {
                if !path.is_empty() {
                    tomo.add(PathMeasurement {
                        path: path.clone(),
                        sent,
                        delivered: delivered.min(sent),
                    });
                }
            }
        }
    }

    // Ground truth: empirical per-transmission loss on links that carried
    // enough data traffic.
    let mut truth = HashMap::new();
    for (i, l) in engine.topology().links().iter().enumerate() {
        let t = engine.trace().links()[i];
        if t.data_tx >= 30 {
            if let Some(loss) = t.empirical_loss() {
                truth.insert((l.src.0, l.dst.0), loss);
            }
        }
    }

    let r = sim.mac.max_attempts;
    let s = shared.lock();
    let dophy_est: HashMap<(u32, u32), f64> = s
        .infer
        .in_band
        .estimates(r, 10)
        .into_iter()
        .map(|(k, e)| (k, e.loss))
        .collect();
    let trad: HashMap<(u32, u32), f64> = tomo
        .estimate_em(&TraditionalConfig::default())
        .into_iter()
        .map(|(k, sigma)| (k, survival_to_transmission_loss(sigma, r)))
        .collect();

    let d = score(&dophy_est, &truth);
    let t = score(&trad, &truth);

    // Routing dynamics actually experienced.
    let changes: u64 = (1..n)
        .map(|i| {
            engine
                .protocol(NodeId(i as u32))
                .router()
                .stats()
                .parent_changes
        })
        .sum();

    println!();
    println!(
        "routing churn: {changes} parent changes across {} nodes ({:.2}/node/hour)",
        n - 1,
        changes as f64 / (n - 1) as f64 / 0.5
    );
    println!("ground-truth links scored: {}", truth.len());
    println!();
    println!(
        "{:>24} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "MAE", "RMSE", "p90", "coverage"
    );
    println!(
        "{:>24} {:>10.4} {:>10.4} {:>10.4} {:>10.3}",
        "dophy (retx-based)",
        d.mae,
        d.rmse,
        d.p90_abs_error,
        d.coverage()
    );
    println!(
        "{:>24} {:>10.4} {:>10.4} {:>10.4} {:>10.3}",
        "traditional (e2e EM)",
        t.mae,
        t.rmse,
        t.p90_abs_error,
        t.coverage()
    );
    println!();
    if d.mae < t.mae {
        println!(
            "Dophy is {:.1}x more accurate under dynamic routing — the paper's headline result.",
            t.mae / d.mae.max(1e-9)
        );
    } else {
        println!("unexpected: traditional tomography matched Dophy on this seed");
    }
}
