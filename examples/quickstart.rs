//! Quickstart: run Dophy on a small grid and print per-link loss estimates
//! against ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dophy::protocol::{build_simulation, DophyConfig};
use dophy_sim::{NodeId, Placement, SimConfig, SimDuration};

fn main() {
    // A 5×5 grid, 15 m spacing, sink in the corner; default radio and MAC
    // (ARQ budget R = 7).
    let mut sim = SimConfig::canonical(42);
    sim.placement = Placement::Grid {
        side: 5,
        spacing: 15.0,
    };

    // Each node reports a reading every 5 s after a 60 s routing warmup.
    let dophy = DophyConfig {
        traffic_period: SimDuration::from_secs(5),
        ..DophyConfig::default()
    };

    let (mut engine, shared) = build_simulation(&sim, &dophy);
    engine.start();
    println!("simulating 20 minutes of a 25-node collection network ...");
    engine.run_for(SimDuration::from_secs(1200));

    let sink = shared.lock();
    println!(
        "delivered {} packets (delivery ratio {:.3}), decoded {:.1}% of them",
        sink.overhead.packets,
        sink.total_delivery_ratio().unwrap_or(0.0),
        100.0 * sink.decode.success_ratio()
    );
    println!(
        "Dophy measurement overhead: {:.2} B/packet stream, {:.2} B/packet total",
        sink.overhead.mean_stream_bytes(),
        sink.overhead.mean_measurement_bytes()
    );
    println!();
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>9}",
        "link", "est. loss", "true loss", "err", "samples"
    );

    let r = sim.mac.max_attempts;
    let mut rows = 0;
    for ((src, dst), est) in sink.infer.in_band.estimates(r, 30) {
        let (s, d) = (NodeId(src), NodeId(dst));
        let truth = engine
            .topology()
            .link_id(s, d)
            .and_then(|id| engine.trace().links()[id].empirical_loss());
        if let Some(truth) = truth {
            println!(
                "{:>10} {:>12.4} {:>12.4} {:>10.4} {:>9}",
                format!("{s}->{d}"),
                est.loss,
                truth,
                (est.loss - truth).abs(),
                est.n_samples
            );
            rows += 1;
            if rows >= 20 {
                println!(
                    "  ... ({} more links)",
                    sink.infer.in_band.covered_links() - rows
                );
                break;
            }
        }
    }
}
