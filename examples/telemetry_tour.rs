//! Tour of the observability layer: run a small dynamic network with a
//! JSONL event trace, a counting observer, and the metrics registry all
//! attached, then show what each one saw.
//!
//! ```text
//! cargo run --release --example telemetry_tour
//! ```
//!
//! Writes the full event trace to `target/telemetry_tour.trace.jsonl` and
//! the sampled metrics series to `target/telemetry_tour.metrics.json`.

use dophy::protocol::{build_simulation, DophyConfig};
use dophy::telemetry::sample_metrics;
use dophy_sim::obs::{CountingObserver, JsonlTracer, MetricsRegistry, MultiObserver, Severity};
use dophy_sim::{LinkDynamics, Observer, Placement, SimConfig, SimDuration};
use std::io::BufWriter;
use std::sync::Arc;

fn main() {
    // 36 nodes on a grid with drifting link qualities — enough churn that
    // parent changes and retransmissions show up in the trace.
    let sim = SimConfig {
        placement: Placement::Grid {
            side: 6,
            spacing: 15.0,
        },
        dynamics: LinkDynamics::Volatile {
            sigma_per_sqrt_s: 0.03,
        },
        ..SimConfig::canonical(23)
    };
    let dophy = DophyConfig {
        traffic_period: SimDuration::from_secs(5),
        ..DophyConfig::default()
    };

    // Observability plumbing: a JSONL tracer streaming warnings and above
    // (drops, decode failures — keep the file small), plus a counting
    // observer tallying everything.
    let trace_path = "target/telemetry_tour.trace.jsonl";
    let file = std::fs::File::create(trace_path).expect("create trace file");
    let tracer = Arc::new(JsonlTracer::new(BufWriter::new(file)).with_min_severity(Severity::Warn));
    let counter = Arc::new(CountingObserver::new());
    let fanout = Arc::new(MultiObserver::new(vec![
        tracer.clone() as Arc<dyn Observer>,
        counter.clone() as Arc<dyn Observer>,
    ]));

    let (mut engine, shared) = build_simulation(&sim, &dophy);
    engine.set_observer(fanout);
    engine.start();

    println!("simulating 10 minutes of a 36-node dynamic network ...");
    let mut registry = MetricsRegistry::new();
    for _ in 0..10 {
        // One minute at a time; sample the metrics registry between chunks.
        engine.run_for(SimDuration::from_secs(60));
        sample_metrics(&mut registry, &engine, &shared.lock());
        registry.snapshot(engine.now());
    }

    let counts = counter.counts();
    println!();
    println!("event totals seen by the counting observer:");
    println!("  tx attempts    : {}", counts.tx);
    println!("  rx deliveries  : {}", counts.rx);
    println!("  acks           : {}", counts.ack);
    println!("  drops          : {}", counts.drops);
    println!("  timers         : {}", counts.timers);
    println!("  parent changes : {}", counts.parent_changes);
    println!("  epoch switches : {}", counts.epoch_switches);
    println!("  decodes        : {}", counts.decodes);

    println!();
    println!("top-5 noisiest links (tx attempts + acks + drops):");
    for ((src, dst), events) in counter.noisiest_links(5) {
        println!("  n{src:<3} -> n{dst:<3} {events:>7} events");
    }

    // A few counters out of the sampled series (last snapshot = run total).
    let last = registry.series().last().expect("snapshots taken");
    println!();
    println!("selected metrics at t = {} s:", last.t_us / 1_000_000);
    for name in [
        "mac_unicast_started",
        "mac_unicast_failed",
        "routing_parent_changes",
        "decode_packets{outcome=ok}",
        "model_dissemination_bytes",
    ] {
        if let Some((_, v)) = last.counters.iter().find(|(k, _)| k == name) {
            println!("  {name:<28} {v}");
        }
    }

    tracer.flush();
    println!();
    println!(
        "wrote {} warn-level trace lines to {trace_path}",
        tracer.lines_written()
    );
    let metrics_path = "target/telemetry_tour.metrics.json";
    let json = serde_json::to_string_pretty(registry.series()).expect("serialize metrics");
    std::fs::write(metrics_path, json).expect("write metrics file");
    println!(
        "wrote {} metric snapshots to {metrics_path}",
        registry.series().len()
    );
}
